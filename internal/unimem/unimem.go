// Package unimem implements the UNIMEM architecture the ECOSCALE design
// builds on (§2, §4.1, inherited from the EUROSERVER project): a shared,
// partitioned global address space in which Workers communicate "via
// regular loads and stores without global cache coherence".
//
// The consistency model is the paper's: "From the point of view of a
// processor in a multi-node machine, a memory page can be cacheable at
// the local coherent node or at a remote coherent node, but not at both.
// This is the basis of the UNIMEM consistency model, which eliminates
// global-scope cache coherence protocols providing a scalable solution."
//
// Each page therefore has exactly one *owner* (the Worker whose DRAM
// holds it) and exactly one *cacher* (the single Worker allowed to hold
// its lines in cache — by default the owner). Moving the caching right
// flushes and invalidates at the old cacher first, so no stale copy can
// survive. There is no invalidation broadcast, no sharer list, no ack
// storm: that is the entire scalability argument, measured in E3.
//
// Timing is modelled on the simulated interconnect and DRAM; data is held
// in a real backing store so computations produce checkable results.
// Cached writes are applied to the backing store immediately (write-
// through data semantics) while their timing follows write-back rules;
// the single-cacher invariant makes this sound.
package unimem

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"ecoscale/internal/mem"
	"ecoscale/internal/noc"
	"ecoscale/internal/sim"
	"ecoscale/internal/trace"
)

// Config shapes a UNIMEM space.
type Config struct {
	// PageBytes is the ownership/caching granularity.
	PageBytes int
	// CacheCfg shapes each Worker's local cache.
	CacheCfg mem.CacheConfig
	// DRAMCfg shapes each Worker's DRAM channel.
	DRAMCfg mem.DRAMConfig
	// CtrlBytes is the size of a request header on the wire.
	CtrlBytes int
}

// DefaultConfig returns 4 KiB pages with default cache and DRAM models.
func DefaultConfig() Config {
	return Config{
		PageBytes: 4096,
		CacheCfg:  mem.DefaultL2Config(),
		DRAMCfg:   mem.DefaultDRAMConfig(),
		CtrlBytes: 16,
	}
}

// page metadata is atomically accessed: on a sharded machine, ownership
// flips at the new owner's LP (a migration landing) while other shards
// read it to route requests. The page *bytes* need no synchronization —
// only the current owner's LP touches them, and ownership hand-offs are
// separated from both sides' accesses by more than the group lookahead,
// so the window barrier orders them.
type page struct {
	owner  atomic.Int32
	cacher atomic.Int32
	data   []byte
}

func (p *page) Owner() int     { return int(p.owner.Load()) }
func (p *page) Cacher() int    { return int(p.cacher.Load()) }
func (p *page) setOwner(w int) { p.owner.Store(int32(w)) }
func (p *page) setCacher(w int) {
	p.cacher.Store(int32(w))
}

type workerMem struct {
	cache  *mem.Cache
	dram   *mem.DRAM
	atomic *sim.Resource
	mbox   *sim.FIFO[Message]
}

// Message is a small interprocessor message delivered to a Worker's
// mailbox, modelling the progressive-address-translation load/store
// communication path the paper cites [12].
type Message struct {
	From    int
	Payload uint64
}

// Space is one UNIMEM global address space (one PGAS domain in ECOSCALE
// terms, spanning the Workers of a Compute Node — or several, when used
// for the whole-system experiments).
type Space struct {
	// Trace, when non-nil, records DMA/stream spans on each Worker's
	// stream lane.
	Trace *trace.Tracer

	net     *noc.Network
	cfg     Config
	reg     *trace.Registry
	pages   map[uint64]*page
	workers []*workerMem
	next    uint64 // next free page number
	reps    map[uint64]*replicaState
}

// NewSpace creates a space over the network's workers. Per-worker
// memory-side state (cache, DRAM channel, atomic unit, mailbox) is a
// flyweight: the slice holds nil until the first access touching that
// worker materializes it, so a 100k-worker space costs one pointer per
// idle worker.
func NewSpace(net *noc.Network, cfg Config, reg *trace.Registry) *Space {
	if cfg.PageBytes <= 0 || cfg.PageBytes%mem.LineBytes != 0 {
		panic("unimem: page size must be a positive multiple of the line size")
	}
	n := net.Topology().NumWorkers()
	s := &Space{net: net, cfg: cfg, reg: reg, pages: map[uint64]*page{}, next: 1}
	s.workers = make([]*workerMem, n)
	return s
}

// netFor returns the interconnect instance to issue worker w's traffic
// on: the space's single network on a legacy machine, w's shard instance
// on a sharded one.
func (s *Space) netFor(w int) *noc.Network { return s.net.For(w) }

// engFor returns the engine worker w's events run on.
func (s *Space) engFor(w int) *sim.Engine { return s.net.For(w).Engine() }

// regFor returns the registry worker w's counters land in: per-shard when
// sharded (report merging sums them), the space's own otherwise.
func (s *Space) regFor(w int) *trace.Registry {
	if s.net.Sharded() {
		return s.net.For(w).Reg()
	}
	return s.reg
}

// wm materializes worker w's memory-side state on first touch. Creation
// schedules no events and consumes no randomness, so when a worker is
// first touched cannot affect simulated behaviour. On a sharded machine
// it must be called at w's LP (all callers are): the state lives on w's
// shard engine.
func (s *Space) wm(w int) *workerMem {
	m := s.workers[w]
	if m == nil {
		eng := s.engFor(w)
		m = &workerMem{
			cache:  mem.NewCache(s.cfg.CacheCfg),
			dram:   mem.NewDRAM(eng, s.cfg.DRAMCfg),
			atomic: sim.NewResource(eng, fmt.Sprintf("atomic-%d", w), 1),
			mbox:   sim.NewFIFO[Message](),
		}
		s.workers[w] = m
	}
	return m
}

// Engine returns the simulation engine.
func (s *Space) Engine() *sim.Engine { return s.net.Engine() }

// Network returns the interconnect the space runs on.
func (s *Space) Network() *noc.Network { return s.net }

// PageBytes returns the page granularity.
func (s *Space) PageBytes() int { return s.cfg.PageBytes }

// NumWorkers returns the number of Workers sharing the space.
func (s *Space) NumWorkers() int { return len(s.workers) }

// Cache returns worker w's cache (for inspection in tests/benches).
func (s *Space) Cache(w int) *mem.Cache { return s.wm(w).cache }

// DRAM returns worker w's DRAM channel.
func (s *Space) DRAM(w int) *mem.DRAM { return s.wm(w).dram }

// countAt bumps a space counter attributed to worker w (whose shard
// registry absorbs it on a sharded machine).
func (s *Space) countAt(w int, name string) {
	if r := s.regFor(w); r != nil {
		r.Counter("unimem." + name).Inc()
	}
}

// Alloc reserves size bytes of globally addressable memory owned by
// worker owner and returns the base address. Allocations are page-
// granular and never recycled (the experiments build fresh spaces).
func (s *Space) Alloc(owner, size int) uint64 {
	if owner < 0 || owner >= len(s.workers) {
		panic(fmt.Sprintf("unimem: bad owner %d", owner))
	}
	if size <= 0 {
		panic("unimem: Alloc size must be positive")
	}
	if s.net.Running() {
		// Sharded runs read the pages map from every shard without locks;
		// it must be frozen before events fire.
		panic("unimem: Alloc during a sharded run (allocate at setup)")
	}
	npages := (size + s.cfg.PageBytes - 1) / s.cfg.PageBytes
	base := s.next * uint64(s.cfg.PageBytes)
	for i := 0; i < npages; i++ {
		p := &page{data: make([]byte, s.cfg.PageBytes)}
		p.setOwner(owner)
		p.setCacher(owner)
		s.pages[s.next] = p
		s.next++
	}
	return base
}

func (s *Space) pageOf(addr uint64) *page {
	p, ok := s.pages[addr/uint64(s.cfg.PageBytes)]
	if !ok {
		panic(fmt.Sprintf("unimem: access to unallocated address %#x", addr))
	}
	return p
}

// OwnerOf returns the Worker whose DRAM holds the page containing addr.
func (s *Space) OwnerOf(addr uint64) int { return s.pageOf(addr).Owner() }

// CacherOf returns the single Worker allowed to cache the page.
func (s *Space) CacherOf(addr uint64) int { return s.pageOf(addr).Cacher() }

// checkSpan panics when [addr, addr+size) crosses a page boundary; the
// bulk helpers split transfers so individual ops never do.
func (s *Space) checkSpan(addr uint64, size int) {
	if size <= 0 {
		panic("unimem: access size must be positive")
	}
	if int(addr%uint64(s.cfg.PageBytes))+size > s.cfg.PageBytes {
		panic(fmt.Sprintf("unimem: access %#x+%d crosses a page boundary", addr, size))
	}
}

// SetCacher moves the page's caching right to node, flushing and
// invalidating the old cacher first so the one-copy invariant holds.
// done runs when the transfer of rights (including flush traffic) is
// complete.
func (s *Space) SetCacher(addr uint64, node int, done func()) {
	p := s.pageOf(addr)
	if node < 0 || node >= len(s.workers) {
		panic(fmt.Sprintf("unimem: bad cacher %d", node))
	}
	if p.Cacher() == node {
		if done != nil {
			done()
		}
		return
	}
	if s.net.Sharded() {
		// Sharded machines pin the caching right to the owner: a remote
		// cacher would put the page bytes under two LPs at once.
		panic("unimem: SetCacher to a non-owner is not supported on a sharded machine")
	}
	old := p.Cacher()
	pageBase := addr / uint64(s.cfg.PageBytes) * uint64(s.cfg.PageBytes)
	// An unmaterialized old cacher has an empty cache: nothing to flush.
	dirty := 0
	if om := s.workers[old]; om != nil {
		_, dirty = om.cache.InvalidateRange(pageBase, s.cfg.PageBytes)
	}
	s.countAt(old, "cacher_moves")
	finish := func() {
		p.setCacher(node)
		if done != nil {
			done()
		}
	}
	if dirty == 0 || old == p.Owner() {
		// Nothing to push over the wire (clean, or dirty lines already
		// live in the owner's DRAM).
		finish()
		return
	}
	// Write the dirty lines back to the owner before handing off.
	owner := p.Owner()
	start := s.Engine().Now()
	wg := sim.NewWaitGroup(s.Engine(), dirty)
	for i := 0; i < dirty; i++ {
		s.net.Send(old, owner, mem.LineBytes, noc.Store, func() {
			s.wm(owner).dram.Access(mem.LineBytes, wg.DoneOne)
		})
	}
	wg.Wait(func() {
		s.observeCoh(old, "cacher-move", start, int64(dirty*mem.LineBytes))
		finish()
	})
}

// observeCoh records one completed timed coherence action (a cacher
// hand-off writeback or a page migration) as a coherence span and a
// latency-histogram sample — the UNIMEM/coherence category of the
// profiler's critical-path attribution.
func (s *Space) observeCoh(node int, name string, start sim.Time, bytes int64) {
	now := s.engFor(node).Now()
	if !s.net.Sharded() {
		// The shared tracer is not shard-safe; sharded machines rely on
		// the per-shard registries below instead.
		s.Trace.Add(trace.Span{Name: name, Cat: trace.CatCoh,
			Start: int64(start), End: int64(now),
			PID: trace.WorkerPID(node), TID: trace.TIDDMA, Arg: bytes})
	}
	if r := s.regFor(node); r != nil {
		trace.LatencyHistogram(r, "lat.coh_us").Observe((now - start).Micros())
	}
}

// Read performs a load of size bytes at addr by worker node, delivering
// the data to done when it arrives. The path depends on the node's
// relationship to the page, exactly as §4.1 describes:
//
//   - node == cacher: cache hit, or line fill from the owner's DRAM
//     (local or over the interconnect).
//   - node == owner but not cacher: DRAM access, uncached.
//   - otherwise: uncached remote load — a round trip to the owner.
func (s *Space) Read(node int, addr uint64, size int, done func(data []byte)) {
	s.checkSpan(addr, size)
	p := s.pageOf(addr)
	owner := p.Owner()
	off := addr % uint64(s.cfg.PageBytes)
	if s.net.Sharded() && owner != node {
		// Cross-LP load: the bytes are captured at the owner's LP — the
		// only LP that touches page data — and travel in the response.
		s.countAt(node, "remote_reads")
		s.netFor(node).Send(node, owner, s.cfg.CtrlBytes, noc.Load, func() {
			s.wm(owner).dram.Access(size, func() {
				buf := make([]byte, size)
				copy(buf, p.data[off:])
				s.netFor(owner).Send(owner, node, size, noc.Load, func() {
					if done != nil {
						done(buf)
					}
				})
			})
		})
		return
	}
	w := s.wm(node)
	deliver := func() {
		if done != nil {
			buf := make([]byte, size)
			copy(buf, p.data[off:])
			done(buf)
		}
	}
	switch {
	case p.Cacher() == node:
		res := w.cache.Access(addr, false)
		s.handleEviction(node, p, res)
		if res.Hit {
			s.countAt(node, "cache_hits")
			s.engFor(node).After(s.cfg.CacheCfg.HitLatency, deliver)
			return
		}
		s.countAt(node, "cache_fills")
		if owner == node {
			w.dram.Access(mem.LineBytes, deliver)
			return
		}
		s.net.Send(node, owner, s.cfg.CtrlBytes, noc.Load, func() {
			s.wm(owner).dram.Access(mem.LineBytes, func() {
				s.net.Send(owner, node, mem.LineBytes, noc.Load, deliver)
			})
		})
	case owner == node:
		s.countAt(node, "local_uncached")
		w.dram.Access(size, deliver)
	default:
		s.countAt(node, "remote_reads")
		s.net.Send(node, owner, s.cfg.CtrlBytes, noc.Load, func() {
			s.wm(owner).dram.Access(size, func() {
				s.net.Send(owner, node, size, noc.Load, deliver)
			})
		})
	}
}

// Write performs a store of data at addr by worker node. done runs when
// the store is globally performed (at the owner, or dirty in the single
// legal cache).
func (s *Space) Write(node int, addr uint64, data []byte, done func()) {
	s.checkSpan(addr, len(data))
	p := s.pageOf(addr)
	owner := p.Owner()
	off := addr % uint64(s.cfg.PageBytes)
	if s.net.Sharded() && owner != node {
		// Cross-LP store: the bytes travel with the request and are
		// applied at the owner's LP (see the page doc above) instead of
		// at issue time.
		s.countAt(node, "remote_writes")
		buf := append([]byte(nil), data...)
		s.netFor(node).Send(node, owner, len(data)+s.cfg.CtrlBytes, noc.Store, func() {
			copy(p.data[off:], buf)
			s.wm(owner).dram.Access(len(buf), func() {
				s.netFor(owner).Send(owner, node, s.cfg.CtrlBytes, noc.Store, func() {
					if done != nil {
						done()
					}
				})
			})
		})
		return
	}
	w := s.wm(node)
	copy(p.data[off:], data) // data plane: applied immediately (see package doc)
	finish := func() {
		if done != nil {
			done()
		}
	}
	switch {
	case p.Cacher() == node:
		res := w.cache.Access(addr, true)
		s.handleEviction(node, p, res)
		if res.Hit {
			s.countAt(node, "cache_hits")
			s.engFor(node).After(s.cfg.CacheCfg.HitLatency, finish)
			return
		}
		s.countAt(node, "cache_fills")
		if owner == node {
			w.dram.Access(mem.LineBytes, finish)
			return
		}
		// Write-allocate: fetch the line, then dirty it locally.
		s.net.Send(node, owner, s.cfg.CtrlBytes, noc.Load, func() {
			s.wm(owner).dram.Access(mem.LineBytes, func() {
				s.net.Send(owner, node, mem.LineBytes, noc.Load, finish)
			})
		})
	case owner == node:
		s.countAt(node, "local_uncached")
		w.dram.Access(len(data), finish)
	default:
		s.countAt(node, "remote_writes")
		// Uncached remote store: posted write + ack.
		s.net.Send(node, owner, len(data)+s.cfg.CtrlBytes, noc.Store, func() {
			s.wm(owner).dram.Access(len(data), func() {
				s.net.Send(owner, node, s.cfg.CtrlBytes, noc.Store, finish)
			})
		})
	}
}

// WriteBack performs the timed store path of Write for size bytes at
// addr without touching the bytes. Accelerators stream their results out
// as an identity write-back of the page-final data; on a sharded machine
// those bytes may only be read at the owner's LP, so the traffic, cache
// effects and counters are modeled here while the data plane stays put.
func (s *Space) WriteBack(node int, addr uint64, size int, done func()) {
	s.checkSpan(addr, size)
	p := s.pageOf(addr)
	owner := p.Owner()
	if s.net.Sharded() && owner != node {
		s.countAt(node, "remote_writes")
		s.netFor(node).Send(node, owner, size+s.cfg.CtrlBytes, noc.Store, func() {
			s.wm(owner).dram.Access(size, func() {
				s.netFor(owner).Send(owner, node, s.cfg.CtrlBytes, noc.Store, func() {
					if done != nil {
						done()
					}
				})
			})
		})
		return
	}
	w := s.wm(node)
	finish := func() {
		if done != nil {
			done()
		}
	}
	switch {
	case p.Cacher() == node:
		res := w.cache.Access(addr, true)
		s.handleEviction(node, p, res)
		if res.Hit {
			s.countAt(node, "cache_hits")
			s.engFor(node).After(s.cfg.CacheCfg.HitLatency, finish)
			return
		}
		s.countAt(node, "cache_fills")
		if owner == node {
			w.dram.Access(mem.LineBytes, finish)
			return
		}
		s.net.Send(node, owner, s.cfg.CtrlBytes, noc.Load, func() {
			s.wm(owner).dram.Access(mem.LineBytes, func() {
				s.net.Send(owner, node, mem.LineBytes, noc.Load, finish)
			})
		})
	case owner == node:
		s.countAt(node, "local_uncached")
		w.dram.Access(size, finish)
	default:
		s.countAt(node, "remote_writes")
		s.net.Send(node, owner, size+s.cfg.CtrlBytes, noc.Store, func() {
			s.wm(owner).dram.Access(size, func() {
				s.net.Send(owner, node, s.cfg.CtrlBytes, noc.Store, finish)
			})
		})
	}
}

// handleEviction charges the write-back cost of a dirty eviction from
// node's cache: to local DRAM when node owns the victim page, or across
// the interconnect to the victim's owner.
func (s *Space) handleEviction(node int, _ *page, res mem.AccessResult) {
	if !res.Evicted || !res.WritebackNeeded {
		return
	}
	vp, ok := s.pages[res.EvictedAddr/uint64(s.cfg.PageBytes)]
	if !ok {
		return
	}
	s.countAt(node, "writebacks")
	vo := vp.Owner()
	if vo == node {
		s.wm(node).dram.Access(mem.LineBytes, nil)
		return
	}
	s.netFor(node).Send(node, vo, mem.LineBytes, noc.Store, func() {
		s.wm(vo).dram.Access(mem.LineBytes, nil)
	})
}

// ReadWord loads a 64-bit little-endian word.
func (s *Space) ReadWord(node int, addr uint64, done func(v uint64)) {
	s.Read(node, addr, 8, func(b []byte) {
		if done != nil {
			done(binary.LittleEndian.Uint64(b))
		}
	})
}

// WriteWord stores a 64-bit little-endian word.
func (s *Space) WriteWord(node int, addr uint64, v uint64, done func()) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.Write(node, addr, b[:], done)
}

// Peek reads data directly from the backing store with no timing; for
// result verification in tests and benches.
func (s *Space) Peek(addr uint64, size int) []byte {
	s.checkSpan(addr, size)
	p := s.pageOf(addr)
	off := addr % uint64(s.cfg.PageBytes)
	out := make([]byte, size)
	copy(out, p.data[off:])
	return out
}

// PeekWord reads a 64-bit word with no timing.
func (s *Space) PeekWord(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(s.Peek(addr, 8))
}

// Poke writes data directly with no timing; for test setup.
func (s *Space) Poke(addr uint64, data []byte) {
	s.checkSpan(addr, len(data))
	p := s.pageOf(addr)
	copy(p.data[addr%uint64(s.cfg.PageBytes):], data)
}

// PokeWord writes a 64-bit word with no timing.
func (s *Space) PokeWord(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.Poke(addr, b[:])
}

// AtomicRMW performs an atomic read-modify-write at the page owner: the
// operation travels to the owner, executes there under the owner's
// atomic unit (serializing concurrent atomics), and the old value
// returns. This is the remote-synchronization path that makes small
// load/store messages preferable to DMA (§4.1).
func (s *Space) AtomicRMW(node int, addr uint64, f func(old uint64) uint64, done func(old uint64)) {
	s.checkSpan(addr, 8)
	p := s.pageOf(addr)
	owner := p.Owner()
	// exec runs at the owner's LP in every mode: the word is read,
	// transformed and written under the owner's atomic unit, so the data
	// plane is already owner-side and needs no sharded variant.
	exec := func() {
		ow := s.wm(owner)
		ow.atomic.Acquire(func() {
			ow.dram.Access(8, func() {
				old := s.PeekWord(addr)
				s.PokeWord(addr, f(old))
				ow.atomic.Release()
				if node == owner {
					if done != nil {
						done(old)
					}
					return
				}
				s.netFor(owner).Send(owner, node, s.cfg.CtrlBytes, noc.Sync, func() {
					if done != nil {
						done(old)
					}
				})
			})
		})
	}
	s.countAt(node, "atomics")
	if node == owner {
		exec()
		return
	}
	s.netFor(node).Send(node, owner, s.cfg.CtrlBytes, noc.Sync, exec)
}

// Notify sends a small interprocessor message to dst's mailbox (the
// "messages to synchronize remote threads" of §4.1), raising the
// mailbox as an interrupt-class transaction.
func (s *Space) Notify(src, dst int, payload uint64, done func()) {
	s.countAt(src, "notifies")
	s.netFor(src).Send(src, dst, s.cfg.CtrlBytes, noc.Interrupt, func() {
		s.wm(dst).mbox.Push(Message{From: src, Payload: payload})
		if done != nil {
			done()
		}
	})
}

// Mailbox returns worker w's message queue; consumers use Pop to park
// until a message arrives.
func (s *Space) Mailbox(w int) *sim.FIFO[Message] { return s.wm(w).mbox }

// MigratePage moves the page containing addr to a new owner: the old
// cacher is flushed, the page bytes stream over as a DMA transfer, and
// ownership plus caching right land at the destination. This is the
// "move tasks and processes close to data instead of moving data around"
// machinery's inverse — data moves when the runtime decides locality is
// better served that way.
// On a sharded machine, MigratePage must be issued at the old owner's LP
// (the interconnect's issuer discipline enforces this); done runs at the
// new owner's LP, where the landing DRAM write and the ownership flip
// execute.
func (s *Space) MigratePage(addr uint64, newOwner int, done func()) {
	p := s.pageOf(addr)
	if newOwner < 0 || newOwner >= len(s.workers) {
		panic(fmt.Sprintf("unimem: bad owner %d", newOwner))
	}
	if p.Owner() == newOwner {
		if done != nil {
			done()
		}
		return
	}
	origOwner := p.Owner()
	s.countAt(origOwner, "migrations")
	start := s.engFor(origOwner).Now()
	s.SetCacher(addr, origOwner, func() {
		old := p.Owner()
		s.netFor(old).DMATransfer(old, newOwner, s.cfg.PageBytes, noc.DefaultDMAConfig(), func() {
			// Sharded DMA completes at the source LP; hop to the new
			// owner for the landing write and the flip.
			s.netFor(old).HopToWorker(newOwner, func() {
				s.wm(newOwner).dram.Access(s.cfg.PageBytes, func() {
					p.setOwner(newOwner)
					p.setCacher(newOwner)
					s.observeCoh(origOwner, "migrate", start, int64(s.cfg.PageBytes))
					if done != nil {
						done()
					}
				})
			})
		})
	})
}
