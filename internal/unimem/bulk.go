package unimem

import (
	"ecoscale/internal/mem"
	"ecoscale/internal/sim"
	"ecoscale/internal/trace"
)

// Bulk and streaming helpers: accelerators and software kernels move data
// through the space in line-granular pipelined streams; these helpers
// split arbitrary spans across page boundaries and keep a bounded number
// of requests in flight.

// splitSpan cuts [addr, addr+size) into page-local chunks of at most
// chunk bytes.
func (s *Space) splitSpan(addr uint64, size, chunk int) []span {
	if chunk <= 0 {
		chunk = mem.LineBytes
	}
	var out []span
	for size > 0 {
		pageRem := s.cfg.PageBytes - int(addr%uint64(s.cfg.PageBytes))
		n := size
		if n > pageRem {
			n = pageRem
		}
		if n > chunk {
			n = chunk
		}
		out = append(out, span{addr: addr, size: n})
		addr += uint64(n)
		size -= n
	}
	return out
}

type span struct {
	addr uint64
	size int
}

// PeekRange reads size bytes starting at addr with no timing, splitting
// across page boundaries; for result verification and identity
// write-back streams.
func (s *Space) PeekRange(addr uint64, size int) []byte {
	out := make([]byte, 0, size)
	for _, sp := range s.splitSpan(addr, size, s.cfg.PageBytes) {
		out = append(out, s.Peek(sp.addr, sp.size)...)
	}
	return out
}

// StreamRead reads size bytes starting at addr on behalf of worker node,
// as a pipeline of line-sized requests with up to window in flight. done
// receives the assembled data.
func (s *Space) StreamRead(node int, addr uint64, size, window int, done func(data []byte)) {
	if size <= 0 {
		if done != nil {
			done(nil)
		}
		return
	}
	if window <= 0 {
		window = 1
	}
	eng := s.engFor(node)
	start := eng.Now()
	spans := s.splitSpan(addr, size, mem.LineBytes)
	buf := make([]byte, size)
	wg := sim.NewWaitGroup(eng, len(spans))
	inFlight := sim.NewResource(eng, "stream-read", window)
	base := addr
	for _, sp := range spans {
		sp := sp
		inFlight.Acquire(func() {
			s.Read(node, sp.addr, sp.size, func(data []byte) {
				copy(buf[sp.addr-base:], data)
				inFlight.Release()
				wg.DoneOne()
			})
		})
	}
	wg.Wait(func() {
		s.observeStream(node, "stream-read", start, size)
		if done != nil {
			done(buf)
		}
	})
}

// observeStream records one completed stream as a DMA span and a
// latency-histogram sample.
func (s *Space) observeStream(node int, name string, start sim.Time, size int) {
	now := s.engFor(node).Now()
	if !s.net.Sharded() {
		// The shared tracer is not shard-safe (see observeCoh).
		s.Trace.Add(trace.Span{Name: name, Cat: trace.CatDMA,
			Start: int64(start), End: int64(now),
			PID: trace.WorkerPID(node), TID: trace.TIDDMA, Arg: int64(size)})
	}
	if r := s.regFor(node); r != nil {
		trace.LatencyHistogram(r, "lat.dma_us").Observe((now - start).Micros())
		r.Counter("unimem.stream_bytes").Add(uint64(size))
	}
}

// StreamWrite writes data starting at addr on behalf of worker node as a
// pipelined stream of line-sized stores with up to window in flight.
func (s *Space) StreamWrite(node int, addr uint64, data []byte, window int, done func()) {
	if len(data) == 0 {
		if done != nil {
			done()
		}
		return
	}
	if window <= 0 {
		window = 1
	}
	eng := s.engFor(node)
	start := eng.Now()
	spans := s.splitSpan(addr, len(data), mem.LineBytes)
	wg := sim.NewWaitGroup(eng, len(spans))
	inFlight := sim.NewResource(eng, "stream-write", window)
	base := addr
	for _, sp := range spans {
		sp := sp
		inFlight.Acquire(func() {
			s.Write(node, sp.addr, data[sp.addr-base:uint64(sp.size)+sp.addr-base], func() {
				inFlight.Release()
				wg.DoneOne()
			})
		})
	}
	wg.Wait(func() {
		s.observeStream(node, "stream-write", start, len(data))
		if done != nil {
			done()
		}
	})
}

// StreamWriteback is StreamWrite for an identity write-back: the same
// pipelined store traffic, but the bytes are never read or copied — see
// Space.WriteBack for why sharded machines require this.
func (s *Space) StreamWriteback(node int, addr uint64, size, window int, done func()) {
	if size <= 0 {
		if done != nil {
			done()
		}
		return
	}
	if window <= 0 {
		window = 1
	}
	eng := s.engFor(node)
	start := eng.Now()
	spans := s.splitSpan(addr, size, mem.LineBytes)
	wg := sim.NewWaitGroup(eng, len(spans))
	inFlight := sim.NewResource(eng, "stream-write", window)
	for _, sp := range spans {
		sp := sp
		inFlight.Acquire(func() {
			s.WriteBack(node, sp.addr, sp.size, func() {
				inFlight.Release()
				wg.DoneOne()
			})
		})
	}
	wg.Wait(func() {
		s.observeStream(node, "stream-write", start, size)
		if done != nil {
			done()
		}
	})
}
