package unimem_test

// Shard-count invariance of the sharded UNIMEM data plane: remote reads
// observe owner-side data, remote writes apply at the owner, atomics
// serialize at the owner, and page migration lands deterministically —
// all independent of how Compute Nodes are packed onto shards.

import (
	"testing"

	"ecoscale/internal/noc"
	"ecoscale/internal/sim"
	"ecoscale/internal/topo"
	"ecoscale/internal/unimem"
)

type shardMemTrace struct {
	final  sim.Time
	events uint64
	sum    uint64
	atom   uint64
	peeked uint64
}

func runShardMemTrace(t *testing.T, shards int) shardMemTrace {
	t.Helper()
	tree := topo.NewTree(4, 4, 2)
	cfg := noc.DefaultConfig(tree.MaxHops())
	g := sim.NewGroup(3, noc.MinLookahead(cfg), sim.BlockPartition(tree.NumComputeNodes(), shards))
	nets := noc.ShardNetworks(g, tree, cfg, nil, nil)
	s := unimem.NewSpace(nets[0], unimem.DefaultConfig(), nil)

	// One page per CN, owned by that CN's first worker.
	nCN := tree.NumComputeNodes()
	addrs := make([]uint64, nCN)
	for cn := 0; cn < nCN; cn++ {
		lo, _ := tree.WorkersIn(1, cn)
		addrs[cn] = s.Alloc(lo, s.PageBytes())
	}

	var tr shardMemTrace
	// got[w] is only written by worker w's delivery callback (w's LP).
	got := make([]uint64, tree.NumWorkers())
	lpOf := func(w int) int32 { return int32(tree.ComputeNodeOf(w)) }
	// Every worker stores a word into the next CN's page, then reads the
	// previous CN's page; one atomic counter lives on CN 0's page.
	for w := 0; w < tree.NumWorkers(); w++ {
		w := w
		cn := tree.ComputeNodeOf(w)
		to := addrs[(cn+1)%nCN] + uint64(16*(w%16))
		from := addrs[(cn+nCN-1)%nCN] + uint64(16*(w%16))
		g.At(lpOf(w), sim.Time(10*w)*sim.Nanosecond, func() {
			s.WriteWord(w, to, uint64(w)*2654435761, func() {
				s.ReadWord(w, from, func(v uint64) { got[w] = v })
			})
		})
		g.At(lpOf(w), sim.Time(5*w+3)*sim.Nanosecond, func() {
			s.AtomicRMW(w, addrs[0]+512, func(old uint64) uint64 { return old + 1 }, nil)
		})
	}
	tr.final = g.RunUntilIdle()
	tr.events = g.EventsRun()
	tr.atom = s.PeekWord(addrs[0] + 512)
	for _, v := range got {
		tr.sum = tr.sum*31 + v
	}
	for _, a := range addrs {
		for off := uint64(0); off < uint64(s.PageBytes()); off += 16 {
			tr.sum = tr.sum*31 + s.PeekWord(a+off)
		}
	}

	// A quiesced migration: move CN 1's page to a worker in CN 5 and read
	// it back from a third CN.
	g.At(lpOf(4), tr.final+100*sim.Nanosecond, func() {
		s.MigratePage(addrs[1], 20, func() {
			s.ReadWord(22, addrs[1]+32, func(v uint64) { tr.peeked = v + 1 })
		})
	})
	tr.final = g.RunUntilIdle()
	tr.events = g.EventsRun()
	if s.OwnerOf(addrs[1]) != 20 {
		t.Fatalf("shards=%d: page owner %d after migration, want 20", shards, s.OwnerOf(addrs[1]))
	}
	return tr
}

func TestShardedSpaceInvariance(t *testing.T) {
	want := runShardMemTrace(t, 1)
	if want.atom != uint64(topo.NewTree(4, 4, 2).NumWorkers()) {
		t.Fatalf("atomic counter %d, want one increment per worker", want.atom)
	}
	if want.peeked == 0 {
		t.Fatal("post-migration read did not complete")
	}
	for _, k := range []int{2, 3, 8} {
		if got := runShardMemTrace(t, k); got != want {
			t.Fatalf("shards=%d diverged: %+v, want %+v", k, got, want)
		}
	}
}
