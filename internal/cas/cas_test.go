package cas

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"ecoscale/internal/trace"
)

func testKey(n int) Key {
	return Key{Scenario: "E1", Params: fmt.Sprintf("n=%d", n), Seed: 7, Version: "v1"}
}

func counter(reg *trace.Registry, name string) uint64 { return reg.CounterTotal(name) }

func TestMemoryRoundTrip(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := Open(Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(k, []byte("hello"))
	got, ok := s.Get(k)
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if counter(reg, MetricHits) != 1 || counter(reg, MetricMisses) != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", counter(reg, MetricHits), counter(reg, MetricMisses))
	}
}

func TestDiskPersistsAcrossStores(t *testing.T) {
	dir := t.TempDir()
	k := testKey(2)
	s1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(k, []byte("payload"))

	reg := trace.NewRegistry()
	s2, err := Open(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("disk Get = %q, %v", got, ok)
	}
	if c := reg.CounterL(MetricHits, trace.L("tier", "disk")).Value; c != 1 {
		t.Fatalf("disk-tier hits = %d, want 1", c)
	}
	// The disk hit was promoted: a second Get is a memory hit.
	if _, ok := s2.Get(k); !ok {
		t.Fatal("promoted entry missing")
	}
	if c := reg.CounterL(MetricHits, trace.L("tier", "mem")).Value; c != 1 {
		t.Fatalf("mem-tier hits = %d, want 1", c)
	}
}

// TestCorruptEntriesFallBack is the robustness satellite: every way an
// on-disk entry can rot — truncation, flipped payload bits, a stale
// format magic, a key mismatch — must read as a miss with a
// cache.corrupt tick, never as a wrong payload or a panic, and a
// recompute must be able to overwrite the wreck.
func TestCorruptEntriesFallBack(t *testing.T) {
	k := testKey(3)
	payload := []byte("the one true payload")

	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"flipped payload bit", func(b []byte) []byte {
			b[diskHeaderLen+20] ^= 0x40 // inside the payload region
			return b
		}},
		{"bad magic / old format", func(b []byte) []byte {
			copy(b, "ECOCAS00")
			return b
		}},
		{"flipped checksum", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}},
		{"empty file", func(b []byte) []byte { return nil }},
		{"length fields lie", func(b []byte) []byte {
			b[12] ^= 0x01 // payLen low byte
			return b
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			reg := trace.NewRegistry()
			s, err := Open(Options{Dir: dir, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			s.Put(k, payload)
			path := s.path(k.Hash())
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(append([]byte(nil), b...)), 0o644); err != nil {
				t.Fatal(err)
			}

			// Fresh store (cold memory tier) must reject the entry.
			reg2 := trace.NewRegistry()
			s2, err := Open(Options{Dir: dir, Metrics: reg2})
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := s2.Get(k); ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if counter(reg2, MetricCorrupt) != 1 {
				t.Fatalf("cache.corrupt = %d, want 1", counter(reg2, MetricCorrupt))
			}
			// Recompute path overwrites and subsequent reads are clean.
			got, hit, err := s2.Do(k, func() ([]byte, error) { return payload, nil })
			if err != nil || hit || !bytes.Equal(got, payload) {
				t.Fatalf("recompute after corruption: %q hit=%v err=%v", got, hit, err)
			}
			s3, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := s3.Get(k); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("rewritten entry unreadable: %q %v", got, ok)
			}
		})
	}
}

// A key mismatch (an entry renamed onto the wrong address) is also
// corruption, even though the bytes are internally consistent.
func TestMisplacedEntryRejected(t *testing.T) {
	dir := t.TempDir()
	reg := trace.NewRegistry()
	s, err := Open(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	a, b := testKey(10), testKey(11)
	s.Put(a, []byte("A"))
	pa, pb := s.path(a.Hash()), s.path(b.Hash())
	if err := os.MkdirAll(filepath.Dir(pb), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pb, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(b); ok {
		t.Fatalf("misplaced entry served as %q", got)
	}
}

func TestReadOnlyNeverTouchesDisk(t *testing.T) {
	dir := t.TempDir()
	k := testKey(4)
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Put(k, []byte("keep"))

	ro, err := Open(Options{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := ro.Get(k); !ok || string(got) != "keep" {
		t.Fatalf("readonly Get = %q, %v", got, ok)
	}
	other := testKey(5)
	ro.Put(other, []byte("new"))
	if _, err := os.Stat(ro.path(other.Hash())); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("readonly Put wrote a disk entry")
	}
	// Corrupt the stored entry: readonly must reject it but leave the
	// file in place for the owner to deal with.
	path := ro.path(k.Hash())
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ro2, err := Open(Options{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ro2.Get(k); ok {
		t.Fatal("corrupt entry served in readonly mode")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("readonly store deleted a corrupt file")
	}
}

func TestLRUEviction(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := Open(Options{MemBytes: 64, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 24)
	s.Put(testKey(1), payload)
	s.Put(testKey(2), payload)
	if _, ok := s.Get(testKey(1)); !ok { // make key 1 most recent
		t.Fatal("key 1 missing before eviction")
	}
	s.Put(testKey(3), payload) // 72 bytes > 64: evicts LRU = key 2
	if counter(reg, MetricEvictions) != 1 {
		t.Fatalf("evictions = %d, want 1", counter(reg, MetricEvictions))
	}
	if _, ok := s.Get(testKey(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := s.Get(testKey(3)); !ok {
		t.Fatal("new entry was evicted")
	}
}

// TestSingleflight is the dedup acceptance test at the store level: N
// concurrent requests for one key run compute exactly once, everyone
// gets the payload, and the other N-1 callers count as cache.dedup.
func TestSingleflight(t *testing.T) {
	const n = 16
	reg := trace.NewRegistry()
	s, err := Open(Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(6)
	var computes atomic.Int64
	gate := make(chan struct{})
	ready := make(chan struct{}, n)

	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ready <- struct{}{}
			p, _, err := s.Do(k, func() ([]byte, error) {
				computes.Add(1)
				<-gate // hold the computation until every caller is queued
				return []byte("shared"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = p
		}(i)
	}
	for i := 0; i < n; i++ {
		<-ready
	}
	close(gate)
	wg.Wait()

	if c := computes.Load(); c != 1 {
		t.Fatalf("compute ran %d times, want 1", c)
	}
	for i, r := range results {
		if string(r) != "shared" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
	// Everyone except the computing caller either deduplicated against
	// the in-flight call or (having queued before the gate opened but
	// arriving after completion) hit the memory tier.
	if got := counter(reg, MetricDedup) + counter(reg, MetricHits); got != n-1 {
		t.Fatalf("dedup+hits = %d, want %d", got, n-1)
	}
	if counter(reg, MetricMisses) != 1 {
		t.Fatalf("misses = %d, want 1", counter(reg, MetricMisses))
	}
}

func TestSingleflightErrorNotCached(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(7)
	boom := errors.New("boom")
	if _, _, err := s.Do(k, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not poison the key: the next Do computes again.
	p, hit, err := s.Do(k, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(p) != "ok" {
		t.Fatalf("retry after error: %q hit=%v err=%v", p, hit, err)
	}
}

// TestKeySensitivity is the key-derivation satellite: flipping any
// single field of the (scenario, params, seed, version) tuple must
// produce a distinct address.
func TestKeySensitivity(t *testing.T) {
	base := Key{Scenario: "E3", Params: "workers=64", Seed: 42, Version: "sim/7"}
	variants := []Key{
		{Scenario: "E4", Params: "workers=64", Seed: 42, Version: "sim/7"},
		{Scenario: "E3", Params: "workers=65", Seed: 42, Version: "sim/7"},
		{Scenario: "E3", Params: "workers=64", Seed: 43, Version: "sim/7"},
		{Scenario: "E3", Params: "workers=64", Seed: 42, Version: "sim/8"},
	}
	seen := map[Hash]string{base.Hash(): "base"}
	for i, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("variant %d collides with %s", i, prev)
		}
		seen[h] = fmt.Sprintf("variant %d", i)
	}
	// Field-boundary ambiguity: shifting a byte between adjacent fields
	// must still change the hash (length-prefixed canonical form).
	a := Key{Scenario: "E3x", Params: "p"}
	b := Key{Scenario: "E3", Params: "xp"}
	if a.Hash() == b.Hash() {
		t.Fatal("field boundaries are ambiguous")
	}
}

// TestParamsCanonical pins the canonical encoding: ParamsMap is
// independent of map construction/iteration order, and Params renders
// values with plain %v.
func TestParamsCanonical(t *testing.T) {
	m1 := map[string]any{}
	m1["zeta"] = 1
	m1["alpha"] = []int{4, 4}
	m1["mid"] = "x"
	m2 := map[string]any{}
	m2["mid"] = "x"
	m2["alpha"] = []int{4, 4}
	m2["zeta"] = 1
	want := "alpha=[4 4] mid=x zeta=1"
	for i := 0; i < 32; i++ { // map iteration order is randomized per lookup
		if got := ParamsMap(m1); got != want {
			t.Fatalf("ParamsMap(m1) = %q, want %q", got, want)
		}
		if got := ParamsMap(m2); got != want {
			t.Fatalf("ParamsMap(m2) = %q, want %q", got, want)
		}
	}
	if got := Params("n", 256, "mode", "tiles"); got != "n=256 mode=tiles" {
		t.Fatalf("Params = %q", got)
	}
}

func TestDiscard(t *testing.T) {
	dir := t.TempDir()
	reg := trace.NewRegistry()
	s, err := Open(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(8)
	s.Put(k, []byte("poisoned"))
	s.Discard(k)
	if _, ok := s.Get(k); ok {
		t.Fatal("discarded entry still served")
	}
	if _, err := os.Stat(s.path(k.Hash())); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("discarded entry still on disk")
	}
	if counter(reg, MetricCorrupt) != 1 {
		t.Fatalf("cache.corrupt = %d, want 1", counter(reg, MetricCorrupt))
	}
}
