// Package cas is a content-addressed store for simulation results.
//
// A Point of an experiment Scenario is a pure function of four inputs:
// the scenario id, the canonical encoding of the point's parameters,
// the seed, and the version stamp of the simulation kernel. The store
// keys each result by a SHA-256 over the canonical serialization of
// that tuple, so identical work — repeated runs, overlapping sweeps,
// concurrent duplicate submissions — resolves to the same address and
// is computed at most once.
//
// Two tiers back the address space:
//
//   - an in-memory LRU bounded by payload bytes, for hits within and
//     across scenarios of one process;
//   - an optional on-disk tier (sharded by hash prefix, one entry per
//     file, checksummed, written via temp file + atomic rename), for
//     hits across processes and days.
//
// Every read of a disk entry re-validates magic, format version, sizes,
// stored key and checksum; anything short of a perfect entry — a torn
// write, a flipped bit, a file from an older format — counts as a miss
// (and a cache.corrupt tick), never a wrong result. Concurrent requests
// for one key are deduplicated in-flight: the first caller computes,
// the rest wait and share (cache.dedup).
package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ecoscale/internal/trace"
)

// Key identifies one cached result. All four fields participate in the
// address: flipping any single one yields a distinct hash, so a bumped
// kernel version invalidates every prior entry without touching disk.
type Key struct {
	Scenario string // scenario / experiment id, e.g. "E3"
	Params   string // canonical point-parameter encoding (see Params)
	Seed     int64  // simulation seed, when the point has one
	Version  string // kernel/code version stamp (core.KernelVersion)
}

// Hash is the 32-byte content address of a Key.
type Hash [sha256.Size]byte

// String returns the lowercase hex form of the hash.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// appendCanonical serializes the key unambiguously: each field is
// length-prefixed, so ("ab","c") and ("a","bc") cannot collide.
func (k Key) appendCanonical(b []byte) []byte {
	field := func(s string) {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	field(k.Scenario)
	field(k.Params)
	b = binary.LittleEndian.AppendUint64(b, uint64(k.Seed))
	field(k.Version)
	return b
}

// Hash returns the content address of the key.
func (k Key) Hash() Hash {
	return sha256.Sum256(k.appendCanonical(nil))
}

// Params builds a canonical parameter encoding from alternating
// name/value pairs, in the order given: "n=4 mode=tiles". Use it when
// the parameter order is fixed in code; use ParamsMap when the
// parameters arrive in a map.
func Params(kv ...any) string {
	if len(kv)%2 != 0 {
		panic("cas.Params: odd number of key/value arguments")
	}
	b := make([]byte, 0, 32)
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprint(kv[i])...)
		b = append(b, '=')
		b = append(b, fmt.Sprint(kv[i+1])...)
	}
	return string(b)
}

// ParamsMap builds the canonical encoding of a parameter map: entries
// are sorted by name, so the result is independent of map iteration
// order.
func ParamsMap(m map[string]any) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	kv := make([]any, 0, 2*len(m))
	for _, n := range names {
		kv = append(kv, n, m[n])
	}
	return Params(kv...)
}

// Counter names the store records into its metrics registry. The
// store serializes its own registry access; callers may share the
// registry with other serialized writers (the runner does).
const (
	MetricHits      = "cache.hits"          // labeled tier=mem|disk
	MetricMisses    = "cache.misses"        // key absent from every tier
	MetricDedup     = "cache.dedup"         // calls that waited on an identical in-flight compute
	MetricEvictions = "cache.evictions"     // memory-tier LRU evictions
	MetricCorrupt   = "cache.corrupt"       // disk entries rejected by validation (torn/flipped/stale)
	MetricErrors    = "cache.errors"        // disk I/O failures (degraded to memory-only behavior)
	MetricBytesIn   = "cache.bytes.read"    // payload bytes served from cache
	MetricBytesOut  = "cache.bytes.written" // payload bytes stored on miss
)

// Options configures Open.
type Options struct {
	// Dir is the on-disk tier root; empty means memory-only.
	Dir string
	// MemBytes bounds the in-memory tier's payload bytes (default 64 MiB,
	// negative disables the memory tier).
	MemBytes int64
	// ReadOnly never touches the disk tier's contents: no entry writes,
	// no deletion of corrupt files. The process-local memory tier still
	// works. For sharing a cache directory that another process owns.
	ReadOnly bool
	// Metrics, when set, receives the cache.* counters.
	Metrics *trace.Registry
}

// Store is a two-tier content-addressed result store. All methods are
// safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	mem      map[Hash]*memEntry
	lruHead  *memEntry // most recent
	lruTail  *memEntry // least recent
	memBytes int64
	memCap   int64
	flight   map[Hash]*call

	dir      string
	readOnly bool
	metrics  *trace.Registry
}

type memEntry struct {
	hash       Hash
	payload    []byte
	prev, next *memEntry
}

type call struct {
	done    chan struct{}
	payload []byte
	err     error
}

// Open creates a store. When Options.Dir is non-empty the directory
// (plus its fan-out shards, lazily) is created unless ReadOnly.
func Open(o Options) (*Store, error) {
	memCap := o.MemBytes
	if memCap == 0 {
		memCap = 64 << 20
	}
	if memCap < 0 {
		memCap = 0
	}
	s := &Store{
		mem:      make(map[Hash]*memEntry),
		memCap:   memCap,
		flight:   make(map[Hash]*call),
		dir:      o.Dir,
		readOnly: o.ReadOnly,
		metrics:  o.Metrics,
	}
	if s.dir != "" && !s.readOnly {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, fmt.Errorf("cas: %w", err)
		}
	}
	return s, nil
}

// count bumps a counter under the store lock (which the caller holds).
func (s *Store) count(name string, n uint64, labels ...trace.Label) {
	if s.metrics == nil {
		return
	}
	s.metrics.CounterL(name, labels...).Add(n)
}

// Get returns the payload stored under k, consulting memory first and
// disk second (promoting disk hits into the memory tier).
func (s *Store) Get(k Key) ([]byte, bool) {
	h := k.Hash()
	s.mu.Lock()
	if e, ok := s.mem[h]; ok {
		s.touch(e)
		s.count(MetricHits, 1, trace.L("tier", "mem"))
		s.count(MetricBytesIn, uint64(len(e.payload)))
		p := e.payload
		s.mu.Unlock()
		return p, true
	}
	s.mu.Unlock()

	if s.dir == "" {
		s.mu.Lock()
		s.count(MetricMisses, 1)
		s.mu.Unlock()
		return nil, false
	}
	payload, ok := s.readDisk(k, h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.count(MetricMisses, 1)
		return nil, false
	}
	s.insertMem(h, payload)
	s.count(MetricHits, 1, trace.L("tier", "disk"))
	s.count(MetricBytesIn, uint64(len(payload)))
	return payload, true
}

// Put stores payload under k: always in the memory tier, and on disk
// unless the store is read-only.
func (s *Store) Put(k Key, payload []byte) {
	h := k.Hash()
	s.mu.Lock()
	s.insertMem(h, payload)
	s.count(MetricBytesOut, uint64(len(payload)))
	s.mu.Unlock()
	if s.dir != "" && !s.readOnly {
		if err := s.writeDisk(k, h, payload); err != nil {
			s.mu.Lock()
			s.count(MetricErrors, 1)
			s.mu.Unlock()
		}
	}
}

// Discard removes k from both tiers and counts it as corrupt. The
// runner calls it when a payload passed the store's checksums but
// failed its own decoder — a stale wire format, for example — so the
// poisoned entry cannot be served again.
func (s *Store) Discard(k Key) {
	h := k.Hash()
	s.mu.Lock()
	if e, ok := s.mem[h]; ok {
		s.removeMem(e)
	}
	s.count(MetricCorrupt, 1)
	s.mu.Unlock()
	if s.dir != "" && !s.readOnly {
		os.Remove(s.path(h))
	}
}

// Do returns the payload for k, computing it at most once across all
// concurrent callers: a cache hit returns immediately; the first
// caller of a missing key runs compute and stores the result; callers
// that arrive while that computation is in flight wait and share it.
// hit reports whether the payload came from the cache (memory, disk,
// or a shared in-flight computation) rather than this caller's own
// compute. A compute error is returned to every sharing caller and
// nothing is stored.
func (s *Store) Do(k Key, compute func() ([]byte, error)) (payload []byte, hit bool, err error) {
	h := k.Hash()
	s.mu.Lock()
	if e, ok := s.mem[h]; ok {
		s.touch(e)
		s.count(MetricHits, 1, trace.L("tier", "mem"))
		s.count(MetricBytesIn, uint64(len(e.payload)))
		p := e.payload
		s.mu.Unlock()
		return p, true, nil
	}
	if c, ok := s.flight[h]; ok {
		s.count(MetricDedup, 1)
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		return c.payload, true, nil
	}
	c := &call{done: make(chan struct{})}
	s.flight[h] = c
	s.mu.Unlock()

	// This caller owns the computation slot. Disk is probed outside the
	// lock; other callers for the same key queue on c.
	if s.dir != "" {
		if p, ok := s.readDisk(k, h); ok {
			s.mu.Lock()
			s.insertMem(h, p)
			s.count(MetricHits, 1, trace.L("tier", "disk"))
			s.count(MetricBytesIn, uint64(len(p)))
			delete(s.flight, h)
			s.mu.Unlock()
			c.payload = p
			close(c.done)
			return p, true, nil
		}
	}
	p, err := compute()
	s.mu.Lock()
	s.count(MetricMisses, 1)
	if err == nil {
		s.insertMem(h, p)
		s.count(MetricBytesOut, uint64(len(p)))
	}
	delete(s.flight, h)
	s.mu.Unlock()
	c.payload, c.err = p, err
	close(c.done)
	if err != nil {
		return nil, false, err
	}
	if s.dir != "" && !s.readOnly {
		if werr := s.writeDisk(k, h, p); werr != nil {
			s.mu.Lock()
			s.count(MetricErrors, 1)
			s.mu.Unlock()
		}
	}
	return p, false, nil
}

// --- memory tier (caller holds s.mu) ---

func (s *Store) insertMem(h Hash, payload []byte) {
	if s.memCap == 0 {
		return
	}
	if e, ok := s.mem[h]; ok {
		s.memBytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		s.touch(e)
	} else {
		e := &memEntry{hash: h, payload: payload}
		s.mem[h] = e
		s.pushFront(e)
		s.memBytes += int64(len(payload))
	}
	for s.memBytes > s.memCap && s.lruTail != nil {
		victim := s.lruTail
		s.removeMem(victim)
		s.count(MetricEvictions, 1)
	}
}

func (s *Store) removeMem(e *memEntry) {
	s.unlink(e)
	delete(s.mem, e.hash)
	s.memBytes -= int64(len(e.payload))
}

func (s *Store) touch(e *memEntry) {
	if s.lruHead == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *Store) pushFront(e *memEntry) {
	e.prev = nil
	e.next = s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = e
	}
	s.lruHead = e
	if s.lruTail == nil {
		s.lruTail = e
	}
}

func (s *Store) unlink(e *memEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.lruHead == e {
		s.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.lruTail == e {
		s.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// --- disk tier ---

// Entry layout (little-endian):
//
//	magic   [8]byte  "ECOCAS01" — format identity and version in one
//	keyLen  uint32
//	payLen  uint32
//	key     keyLen bytes (canonical Key serialization)
//	payload payLen bytes
//	sum     uint64   FNV-1a over everything above
//
// The trailing checksum catches truncation (file shorter than the
// declared sizes fails earlier, equal-length corruption fails here);
// the embedded key catches hash collisions and entries renamed across
// directories.
var diskMagic = [8]byte{'E', 'C', 'O', 'C', 'A', 'S', '0', '1'}

const diskHeaderLen = 8 + 4 + 4

func (s *Store) path(h Hash) string {
	hx := h.String()
	return filepath.Join(s.dir, hx[:2], hx+".cas")
}

func encodeEntry(k Key, payload []byte) []byte {
	key := k.appendCanonical(nil)
	b := make([]byte, 0, diskHeaderLen+len(key)+len(payload)+8)
	b = append(b, diskMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, key...)
	b = append(b, payload...)
	f := fnv.New64a()
	f.Write(b)
	return binary.LittleEndian.AppendUint64(b, f.Sum64())
}

var errCorrupt = errors.New("cas: corrupt entry")

// decodeEntry validates one on-disk entry against the key it should
// hold and returns its payload.
func decodeEntry(k Key, b []byte) ([]byte, error) {
	if len(b) < diskHeaderLen+8 || [8]byte(b[:8]) != diskMagic {
		return nil, errCorrupt
	}
	keyLen := binary.LittleEndian.Uint32(b[8:12])
	payLen := binary.LittleEndian.Uint32(b[12:16])
	want := diskHeaderLen + int64(keyLen) + int64(payLen) + 8
	if int64(len(b)) != want {
		return nil, errCorrupt
	}
	f := fnv.New64a()
	f.Write(b[:len(b)-8])
	if binary.LittleEndian.Uint64(b[len(b)-8:]) != f.Sum64() {
		return nil, errCorrupt
	}
	key := b[diskHeaderLen : diskHeaderLen+int(keyLen)]
	if string(key) != string(k.appendCanonical(nil)) {
		return nil, errCorrupt
	}
	payload := make([]byte, payLen)
	copy(payload, b[diskHeaderLen+int(keyLen):len(b)-8])
	return payload, nil
}

// readDisk loads and validates the entry for k. Invalid entries count
// as corrupt, are deleted (unless read-only) and report a miss.
func (s *Store) readDisk(k Key, h Hash) ([]byte, bool) {
	b, err := os.ReadFile(s.path(h))
	if err != nil {
		return nil, false // absent (or unreadable) is a plain miss
	}
	payload, err := decodeEntry(k, b)
	if err != nil {
		s.mu.Lock()
		s.count(MetricCorrupt, 1)
		s.mu.Unlock()
		if !s.readOnly {
			os.Remove(s.path(h))
		}
		return nil, false
	}
	return payload, true
}

// writeDisk persists the entry via temp file + rename, so readers only
// ever observe complete entries regardless of crashes mid-write.
func (s *Store) writeDisk(k Key, h Hash, payload []byte) error {
	p := s.path(h)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return err
	}
	b := encodeEntry(k, payload)
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}
