package profile

import (
	"fmt"
	"strings"

	"ecoscale/internal/trace"
)

// This file renders the human-facing bottleneck report printed by
// `ecosim -profile`. Every number is derived from the deterministic
// span record and formatted with fixed precision, so the report is
// byte-stable across runs of the same scenario.

// TopK is the default contributor-table depth.
const TopK = 10

// componentName labels a trace process for the report.
func componentName(tr *trace.Tracer, pid int) string {
	if n := tr.ProcessName(pid); n != "" {
		return n
	}
	if pid == trace.PIDSystem {
		return "system"
	}
	return fmt.Sprintf("worker %d", pid-1)
}

func us(ps int64) float64 { return float64(ps) / 1e6 }

// BottleneckReport renders the full report: critical path by category
// with Amdahl what-if estimates, top contributors, span-derived lane
// utilization, and the sampling-profiler summary.
func (p *Profiler) BottleneckReport() string {
	var b strings.Builder
	if p == nil {
		return "(profiler disabled)\n"
	}
	cp := p.CriticalPath()
	fmt.Fprintf(&b, "== bottleneck report ==\n")
	fmt.Fprintf(&b, "traced window: %.3fus (%d spans)\n", us(cp.Makespan()), p.Tracer.Len())
	if cp.Makespan() <= 0 {
		b.WriteString("(no spans recorded; run with tracing enabled)\n")
		return b.String()
	}

	cat := trace.NewTable("critical path by category",
		"category", "time(us)", "share", "2x faster => makespan")
	for _, sh := range cp.Shares() {
		whatIf := "-"
		if sh.Cat != Idle {
			whatIf = fmt.Sprintf("%+.1f%%", (cp.WhatIf(sh.Cat, 2)-1)*100)
		}
		cat.AddRow(sh.Cat.String(), fmt.Sprintf("%.3f", us(sh.Ps)),
			fmt.Sprintf("%.1f%%", sh.Frac*100), whatIf)
	}
	b.WriteString(cat.String())

	top := cp.TopContributors(TopK)
	if len(top) > 0 {
		tbl := trace.NewTable("top critical-path contributors",
			"component", "activity", "category", "time(us)", "share")
		for _, c := range top {
			tbl.AddRow(componentName(p.Tracer, c.PID), c.Name, c.Cat.String(),
				fmt.Sprintf("%.3f", us(c.Ps)), fmt.Sprintf("%.1f%%", c.Frac*100))
		}
		b.WriteString(tbl.String())
	}

	lanes := LaneUtilization(p.Tracer.Spans(), cp.Start, cp.End)
	if len(lanes) > 0 {
		tbl := trace.NewTable("lane utilization (span-derived)",
			"component", "lane", "busy(us)", "busy", "peak")
		for _, u := range lanes {
			tbl.AddRow(componentName(p.Tracer, u.PID), u.Track,
				fmt.Sprintf("%.3f", us(u.BusyPs)),
				fmt.Sprintf("%.1f%%", u.Frac*100), u.Peak)
		}
		b.WriteString(tbl.String())
	}

	if p.Sampler.Samples() > 0 {
		b.WriteString(p.Sampler.Table().String())
	}
	return b.String()
}
