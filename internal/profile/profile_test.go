package profile

import (
	"math/rand"
	"strings"
	"testing"

	"ecoscale/internal/sim"
	"ecoscale/internal/trace"
)

func span(cat string, start, end int64, name string, pid int) trace.Span {
	return trace.Span{Name: name, Cat: cat, Start: start, End: end, PID: pid}
}

// TestCriticalPathAttribution pins the sweep's choices on a hand-built
// scenario: work beats transfers beats queueing, gaps become idle, and
// the segments exactly tile the window.
func TestCriticalPathAttribution(t *testing.T) {
	spans := []trace.Span{
		span(trace.CatQueue, 0, 90, "k", 1),
		span(trace.CatCompute, 10, 50, "k", 1),
		span(trace.CatDMA, 40, 80, "stream-read", 1),
		span(trace.CatTask, 0, 100, "k", 1), // envelope: widens window only
	}
	cp := CriticalPath(spans)
	if cp.Start != 0 || cp.End != 100 {
		t.Fatalf("window [%d,%d], want [0,100]", cp.Start, cp.End)
	}
	want := map[Category]int64{Compute: 40, NoC: 30, Queue: 20, Idle: 10}
	for c, ps := range want {
		if got := cp.CategoryTime(c); got != ps {
			t.Errorf("%v: %d ps, want %d", c, got, ps)
		}
	}
	var sum int64
	for c := Category(0); c < numCategories; c++ {
		sum += cp.CategoryTime(c)
	}
	if sum != cp.Makespan() {
		t.Errorf("category times sum to %d, makespan %d", sum, cp.Makespan())
	}
}

// TestCriticalPathTilesWindow fuzzes random span sets and checks the
// invariants the report depends on: segments are contiguous, cover the
// window exactly, and per-category times equal segment sums.
func TestCriticalPathTilesWindow(t *testing.T) {
	cats := []string{trace.CatQueue, trace.CatCompute, trace.CatDMA,
		trace.CatCoh, trace.CatSMMU, trace.CatReconfig, trace.CatSteal, trace.CatTask}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		spans := make([]trace.Span, n)
		for i := range spans {
			start := int64(rng.Intn(1000))
			spans[i] = span(cats[rng.Intn(len(cats))], start, start+int64(rng.Intn(200)), "x", rng.Intn(3))
		}
		cp := CriticalPath(spans)
		if cp.Makespan() == 0 {
			continue
		}
		if len(cp.Segments) == 0 {
			t.Fatalf("trial %d: no segments over window %d", trial, cp.Makespan())
		}
		if cp.Segments[0].Start != cp.Start || cp.Segments[len(cp.Segments)-1].End != cp.End {
			t.Fatalf("trial %d: segments do not span window", trial)
		}
		var sum int64
		for i, s := range cp.Segments {
			if s.End <= s.Start {
				t.Fatalf("trial %d: empty segment %+v", trial, s)
			}
			if i > 0 && cp.Segments[i-1].End != s.Start {
				t.Fatalf("trial %d: gap between segments %d and %d", trial, i-1, i)
			}
			sum += s.Dur()
		}
		if sum != cp.Makespan() {
			t.Fatalf("trial %d: segments sum %d != makespan %d", trial, sum, cp.Makespan())
		}
	}
}

// TestCriticalPathDeterminism: same spans, same path, byte-identical
// report.
func TestCriticalPathDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spans := make([]trace.Span, 300)
	cats := []string{trace.CatQueue, trace.CatCompute, trace.CatDMA, trace.CatSMMU}
	for i := range spans {
		start := int64(rng.Intn(5000))
		spans[i] = span(cats[i%len(cats)], start, start+int64(rng.Intn(400)), "x", i%4)
	}
	a, b := CriticalPath(spans), CriticalPath(spans)
	if len(a.Segments) != len(b.Segments) {
		t.Fatal("segment counts differ")
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Fatalf("segment %d differs: %+v vs %+v", i, a.Segments[i], b.Segments[i])
		}
	}
}

func TestWhatIf(t *testing.T) {
	spans := []trace.Span{
		span(trace.CatCompute, 0, 40, "k", 1),
		span(trace.CatTask, 0, 100, "k", 1),
	}
	cp := CriticalPath(spans)
	if got := cp.WhatIf(Compute, 2); got != 0.8 {
		t.Errorf("WhatIf(Compute, 2) = %v, want 0.8", got)
	}
	if got := cp.WhatIf(NoC, 2); got != 1 {
		t.Errorf("WhatIf(NoC, 2) = %v, want 1 (no NoC time)", got)
	}
}

func TestLaneUtilization(t *testing.T) {
	spans := []trace.Span{
		span(trace.CatCompute, 0, 50, "k", 1),
		span(trace.CatCompute, 25, 75, "k", 1), // overlaps: union 75, peak 2
		span(trace.CatDMA, 10, 20, "s", 2),
	}
	lanes := LaneUtilization(spans, 0, 100)
	if len(lanes) != 2 {
		t.Fatalf("%d lanes, want 2", len(lanes))
	}
	cpu := lanes[0]
	if cpu.PID != 1 || cpu.Track != "busy cpu" || cpu.BusyPs != 75 || cpu.Peak != 2 {
		t.Errorf("cpu lane: %+v", cpu)
	}
	if lanes[1].BusyPs != 10 || lanes[1].Peak != 1 {
		t.Errorf("dma lane: %+v", lanes[1])
	}
}

// TestEmitCounterTracks checks coalescing and that the Chrome export
// carries ph:"C" events.
func TestEmitCounterTracks(t *testing.T) {
	tr := trace.NewTracer(0)
	tr.Add(span(trace.CatCompute, 0, 50, "k", 1))
	tr.Add(span(trace.CatCompute, 50, 80, "k", 1)) // back-to-back: no dip to 0 spike at 50
	EmitCounterTracks(tr)
	cs := tr.CounterSamples()
	if len(cs) != 3 {
		t.Fatalf("%d samples, want 3 (0→1, 50→1, 80→0)", len(cs))
	}
	if cs[1].At != 50 || cs[1].Value != 1 {
		t.Errorf("coalesced sample at 50: %+v", cs[1])
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ph":"C"`) {
		t.Error("export missing counter events")
	}
}

// TestSamplerDoesNotPerturb runs the same event pattern with and
// without the sampler and checks event count and final time match,
// while the sampler still collected samples and gauges.
func TestSamplerDoesNotPerturb(t *testing.T) {
	run := func(withSampler bool) (uint64, sim.Time, *Sampler) {
		eng := sim.NewEngine(1)
		depth := 0
		for i := 0; i < 100; i++ {
			d := sim.Time(i) * sim.Microsecond
			eng.At(d, func() { depth++ })
		}
		var sp *Sampler
		if withSampler {
			reg := trace.NewRegistry()
			sp = NewSampler(eng, 10*sim.Microsecond, reg, nil)
			sp.AddProbe("depth", 0, func() float64 { return float64(depth) })
			sp.Arm()
		}
		end := eng.RunUntilIdle()
		return eng.EventsRun(), end, sp
	}
	ran0, end0, _ := run(false)
	ran1, end1, sp := run(true)
	if ran0 != ran1 {
		t.Errorf("event counts differ: %d vs %d", ran0, ran1)
	}
	if end0 != end1 {
		t.Errorf("final times differ: %v vs %v", end0, end1)
	}
	if sp.Samples() < 9 {
		t.Errorf("only %d samples", sp.Samples())
	}
	g := sp.Reg.Gauge("prof.depth")
	if !g.Seen() || g.TimeWeightedMean() <= 0 {
		t.Errorf("gauge not populated: %+v", g)
	}
	if !strings.Contains(sp.Table().String(), "depth") {
		t.Error("sampler table missing probe row")
	}
}

// TestBottleneckReportStable renders the report twice from one profiler
// input and expects byte-identical output.
func TestBottleneckReportStable(t *testing.T) {
	mk := func() *Profiler {
		eng := sim.NewEngine(3)
		tr := trace.NewTracer(0)
		tr.SetProcessName(1, "worker 0")
		tr.Add(span(trace.CatQueue, 0, 30, "k", 1))
		tr.Add(span(trace.CatCompute, 30, 90, "k", 1))
		tr.Add(span(trace.CatDMA, 60, 120, "stream-write", 1))
		p := New(eng, tr, trace.NewRegistry(), 0)
		return p
	}
	a, b := mk().BottleneckReport(), mk().BottleneckReport()
	if a != b {
		t.Fatalf("reports differ:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{"critical path by category", "compute", "noc", "worker 0"} {
		if !strings.Contains(a, want) {
			t.Errorf("report missing %q:\n%s", want, a)
		}
	}
}
