package profile

import (
	"ecoscale/internal/sim"
	"ecoscale/internal/trace"
)

// Sampler is the sim-clock sampling profiler: at every Interval
// boundary it reads a set of probes (queue depths, in-flight counts,
// outstanding events) and records them as time-weighted gauges and
// Perfetto counter tracks.
//
// It rides the engine's sampling hook rather than scheduling events of
// its own: the engine invokes the sampler immediately before the first
// event at or after each boundary. That keeps the event count, the seq
// ordering and the final idle time of the run byte-identical with the
// sampler on or off, and makes the disabled cost a single comparison
// per fired event.
type Sampler struct {
	// Interval is the sim-clock sampling period.
	Interval sim.Time
	// Reg, when non-nil, receives one prof.<name> gauge per probe whose
	// time-weighted mean summarizes the run.
	Reg *trace.Registry
	// Trace, when non-nil, receives one counter-track sample per probe
	// per tick.
	Trace *trace.Tracer

	eng     *sim.Engine
	probes  []Probe
	gauges  []*trace.Gauge
	peaks   []float64
	lasts   []float64
	samples int
}

// Probe is one scalar the sampler reads each tick.
type Probe struct {
	// Name is the gauge suffix and counter-track name.
	Name string
	// PID is the counter track's process (PIDSystem for machine-wide
	// signals).
	PID int
	// Fn reads the current value. It must not mutate simulation state.
	Fn func() float64
}

// NewSampler creates a sampler on eng. interval defaults to 10µs when
// not positive.
func NewSampler(eng *sim.Engine, interval sim.Time, reg *trace.Registry, tr *trace.Tracer) *Sampler {
	if interval <= 0 {
		interval = 10 * sim.Microsecond
	}
	return &Sampler{Interval: interval, Reg: reg, Trace: tr, eng: eng}
}

// AddProbe registers one probe; call before Arm.
func (sp *Sampler) AddProbe(name string, pid int, fn func() float64) {
	sp.probes = append(sp.probes, Probe{Name: name, PID: pid, Fn: fn})
	var g *trace.Gauge
	if sp.Reg != nil {
		g = sp.Reg.Gauge("prof." + name)
	}
	sp.gauges = append(sp.gauges, g)
	sp.peaks = append(sp.peaks, 0)
	sp.lasts = append(sp.lasts, 0)
}

// Arm installs the sampler on the engine, sampling from the current
// time onward. Safe to call before every run; a nil sampler is a no-op.
func (sp *Sampler) Arm() {
	if sp == nil {
		return
	}
	sp.eng.SetSampler(sp.eng.Now(), sp.tick)
}

func (sp *Sampler) tick(now sim.Time) sim.Time {
	at := int64(now)
	for i := range sp.probes {
		p := &sp.probes[i]
		v := p.Fn()
		if g := sp.gauges[i]; g != nil {
			g.SetAt(at, v)
		}
		sp.Trace.AddCounter(at, p.PID, p.Name, v)
		if v > sp.peaks[i] {
			sp.peaks[i] = v
		}
		sp.lasts[i] = v
	}
	sp.samples++
	return now + sp.Interval
}

// Samples returns how many ticks have fired.
func (sp *Sampler) Samples() int {
	if sp == nil {
		return 0
	}
	return sp.samples
}

// Table renders the per-probe summary: sample count, time-weighted
// mean (when a registry was attached), last value and peak.
func (sp *Sampler) Table() *trace.Table {
	tbl := trace.NewTable("sampling profile", "probe", "samples", "tw-mean", "last", "peak")
	if sp == nil {
		return tbl
	}
	for i := range sp.probes {
		mean := 0.0
		if g := sp.gauges[i]; g != nil {
			mean = g.TimeWeightedMean()
		}
		tbl.AddRow(sp.probes[i].Name, sp.samples, mean, sp.lasts[i], sp.peaks[i])
	}
	return tbl
}
