package profile

import (
	"ecoscale/internal/trace"
)

// This file derives time-weighted utilization timelines from the span
// record: per-lane overlap counts rendered as Perfetto counter tracks
// ("how many activities of this kind were in flight at t") and as
// busy-fraction summaries for the bottleneck report.

// trackOf maps an activity span to its counter-track name within its
// process, or "" for spans that have no timeline (task envelopes,
// instants).
func trackOf(s *trace.Span) string {
	if s.End <= s.Start {
		return ""
	}
	switch s.Cat {
	case trace.CatQueue:
		return "queued"
	case trace.CatCompute:
		if s.TID == trace.TIDFabric {
			return "busy fabric"
		}
		return "busy cpu"
	case trace.CatSMMU:
		return "offload"
	case trace.CatDMA:
		return "dma streams"
	case trace.CatCoh:
		return "coherence"
	case trace.CatReconfig:
		return "reconfig"
	case trace.CatSteal:
		return "steal"
	default:
		return ""
	}
}

// laneKey identifies one counter track: a process plus a track name.
type laneKey struct {
	pid   int
	track string
}

// delta is one +1/−1 step of a lane's overlap count.
type delta struct {
	at int64
	d  int
}

// laneDeltas collects per-lane step events from the retained spans.
func laneDeltas(spans []trace.Span) map[laneKey][]delta {
	lanes := map[laneKey][]delta{}
	for i := range spans {
		s := &spans[i]
		track := trackOf(s)
		if track == "" {
			continue
		}
		k := laneKey{s.PID, track}
		lanes[k] = append(lanes[k], delta{s.Start, +1}, delta{s.End, -1})
	}
	for _, ds := range lanes {
		sortSlice(ds, func(a, b delta) bool {
			if a.at != b.at {
				return a.at < b.at
			}
			return a.d < b.d // ends before starts: back-to-back spans don't spike
		})
	}
	return lanes
}

// sortedLaneKeys returns the lane keys ordered by (pid, track).
func sortedLaneKeys(lanes map[laneKey][]delta) []laneKey {
	keys := make([]laneKey, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sortSlice(keys, func(a, b laneKey) bool {
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.track < b.track
	})
	return keys
}

// EmitCounterTracks converts the tracer's retained spans into Perfetto
// counter tracks, one per (process, activity kind): the sample value is
// the number of overlapping activities at that instant. Same-timestamp
// steps are coalesced to a single sample. Lanes are emitted in sorted
// order, so the export is deterministic.
func EmitCounterTracks(t *trace.Tracer) {
	if t == nil {
		return
	}
	lanes := laneDeltas(t.Spans())
	for _, k := range sortedLaneKeys(lanes) {
		level := 0
		ds := lanes[k]
		for i := 0; i < len(ds); {
			at := ds[i].at
			for i < len(ds) && ds[i].at == at {
				level += ds[i].d
				i++
			}
			t.AddCounter(at, k.pid, k.track, float64(level))
		}
	}
}

// LaneUtil is one lane's utilization summary over the analysis window.
type LaneUtil struct {
	PID   int
	Track string
	// BusyPs is the union length (overlap ≥ 1) of the lane's spans.
	BusyPs int64
	// Frac is BusyPs over the window length.
	Frac float64
	// Peak is the maximum overlap count.
	Peak int
}

// LaneUtilization summarizes each lane's busy fraction of the window
// [start, end], sorted by (pid, track).
func LaneUtilization(spans []trace.Span, start, end int64) []LaneUtil {
	window := end - start
	lanes := laneDeltas(spans)
	out := make([]LaneUtil, 0, len(lanes))
	for _, k := range sortedLaneKeys(lanes) {
		u := LaneUtil{PID: k.pid, Track: k.track}
		level, lastAt := 0, int64(0)
		for _, d := range lanes[k] {
			if level > 0 {
				u.BusyPs += d.at - lastAt
			}
			level += d.d
			if level > u.Peak {
				u.Peak = level
			}
			lastAt = d.at
		}
		if window > 0 {
			u.Frac = float64(u.BusyPs) / float64(window)
		}
		out = append(out, u)
	}
	return out
}
