package profile

import (
	"ecoscale/internal/sim"
	"ecoscale/internal/trace"
)

// Profiler bundles the three analyses for one simulated machine: the
// sampling profiler runs during the simulation (through the engine
// hook); the critical path and utilization timelines are derived from
// the span record after the run. A nil *Profiler is a valid, disabled
// profiler: Arm and EmitTracks are no-ops, following the tracer's
// nil-safe discipline.
type Profiler struct {
	// Tracer supplies the span record and receives the counter tracks.
	Tracer *trace.Tracer
	// Reg, when non-nil, receives profile.* gauges (critical-path
	// shares, sampler means).
	Reg *trace.Registry
	// Sampler is the sim-clock sampling profiler; add probes before the
	// first Arm.
	Sampler *Sampler

	cp      *CritPath
	emitted bool
}

// New creates a profiler over eng whose analyses read and extend tr.
// interval is the sampling period (≤ 0 for the 10µs default).
func New(eng *sim.Engine, tr *trace.Tracer, reg *trace.Registry, interval sim.Time) *Profiler {
	return &Profiler{Tracer: tr, Reg: reg, Sampler: NewSampler(eng, interval, reg, tr)}
}

// AddProbe registers a sampling probe; see Sampler.AddProbe.
func (p *Profiler) AddProbe(name string, pid int, fn func() float64) {
	if p == nil {
		return
	}
	p.Sampler.AddProbe(name, pid, fn)
}

// Arm (re)installs the sampling hook; call before each engine run.
func (p *Profiler) Arm() {
	if p == nil {
		return
	}
	p.Sampler.Arm()
}

// CriticalPath extracts (and caches) the run's critical path, and
// publishes per-category share gauges to the registry.
func (p *Profiler) CriticalPath() *CritPath {
	if p == nil {
		return &CritPath{}
	}
	if p.cp != nil {
		return p.cp
	}
	p.cp = CriticalPath(p.Tracer.Spans())
	if p.Reg != nil && p.cp.Makespan() > 0 {
		for _, sh := range p.cp.Shares() {
			p.Reg.GaugeL("profile.critpath.share",
				trace.L("category", sh.Cat.String())).Set(sh.Frac)
		}
	}
	return p.cp
}

// EmitTracks appends the utilization counter tracks to the tracer's
// export, at most once per run.
func (p *Profiler) EmitTracks() {
	if p == nil || p.emitted {
		return
	}
	p.emitted = true
	EmitCounterTracks(p.Tracer)
}
