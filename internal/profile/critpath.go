// Package profile is the simulation profiler: it consumes the span
// tracer's record of one run and answers "where did the makespan go?".
// Three analyses build on each other:
//
//   - critical path (this file): a backward sweep over the recorded
//     activity spans partitions the traced window into contiguous
//     segments, each attributed to the most causally relevant activity
//     covering it — compute over reconfiguration over coherence over
//     interconnect over queueing — or to idle when nothing was running.
//     Segments exactly tile the window, so per-category shares sum to
//     the makespan by construction.
//   - utilization timelines (util.go): per-lane overlap counts rendered
//     as Perfetto counter tracks and busy fractions.
//   - sampling profiler (sampler.go): queue depths and outstanding-event
//     counts recorded on sim-clock boundaries through the engine's
//     sampling hook, with no events of its own.
//
// The profiler is an offline consumer: it never schedules events and
// never mutates simulation state, so enabling it cannot change results.
package profile

import (
	"sort"

	"ecoscale/internal/trace"
)

// Category buckets critical-path time the way the paper argues about
// bottlenecks: useful work, reconfiguration, coherence, interconnect,
// offload/queueing, runtime control, idle.
type Category int

// Critical-path categories, in report order.
const (
	Compute   Category = iota // CPU or fabric pipeline execution
	Reconfig                  // partial-reconfiguration port transfers
	Coherence                 // UNIMEM cacher hand-offs and migrations
	NoC                       // UNIMEM streams over the interconnect
	Queue                     // scheduler queueing + doorbell/translation
	Runtime                   // work-stealing transfers, control plane
	Idle                      // nothing traced was active
	numCategories
)

func (c Category) String() string {
	switch c {
	case Compute:
		return "compute"
	case Reconfig:
		return "reconfig"
	case Coherence:
		return "coherence"
	case NoC:
		return "noc"
	case Queue:
		return "queue"
	case Runtime:
		return "runtime"
	case Idle:
		return "idle"
	default:
		return "?"
	}
}

// Categories returns the non-idle categories in report order.
func Categories() []Category {
	return []Category{Compute, Reconfig, Coherence, NoC, Queue, Runtime}
}

// categoryOf maps a span's trace category to a profiler category and an
// attribution priority (higher wins when spans overlap: actual work
// explains elapsed time better than the waiting layered around it).
// ok is false for spans that are not activities (task envelopes,
// routing/dispatch instants, daemon ticks).
func categoryOf(cat string) (c Category, prio int, ok bool) {
	switch cat {
	case trace.CatCompute:
		return Compute, 7, true
	case trace.CatReconfig:
		return Reconfig, 6, true
	case trace.CatCoh:
		return Coherence, 5, true
	case trace.CatDMA:
		return NoC, 4, true
	case trace.CatSMMU:
		return Queue, 3, true
	case trace.CatSteal:
		return Runtime, 2, true
	case trace.CatQueue:
		return Queue, 1, true
	default:
		return 0, 0, false
	}
}

// Segment is one contiguous critical-path interval attributed to a
// single activity (or to idle).
type Segment struct {
	Start, End int64
	Cat        Category
	// Name and PID identify the attributed span ("" / 0 for idle).
	Name string
	PID  int
}

// Dur returns the segment length in picoseconds.
func (s Segment) Dur() int64 { return s.End - s.Start }

// CritPath is the result of a critical-path extraction: an exact
// partition of the traced window into attributed segments.
type CritPath struct {
	// Start and End bound the analysis window: the earliest span start
	// and latest span end over all retained spans (including task
	// envelopes, so the window is the full traced makespan).
	Start, End int64
	// Segments tile [Start, End] in ascending time order.
	Segments []Segment

	byCat [numCategories]int64
}

// act is one candidate activity in the sweep.
type act struct {
	start, end int64
	cat        Category
	prio       int
	name       string
	pid        int
	seq        int // recording order, the final determinism tie-break
}

// actBetter orders the candidate heap: higher priority first, then the
// latest start (the most proximate cause), then recording order.
func actBetter(a, b act) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	if a.start != b.start {
		return a.start > b.start
	}
	return a.seq < b.seq
}

// actHeap is a plain binary max-heap under actBetter.
type actHeap []act

func (h *actHeap) push(a act) {
	q := append(*h, a)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !actBetter(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *actHeap) pop() act {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && actBetter(q[l], q[m]) {
			m = l
		}
		if r < n && actBetter(q[r], q[m]) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*h = q
	return top
}

// CriticalPath extracts the critical path from a run's retained spans.
//
// The sweep walks backward from the window's end. At each cursor it
// considers the activities covering the instant just before the cursor
// and picks the best under actBetter; the segment extends down to that
// activity's start or to the next activation boundary (the largest
// still-unprocessed span end), whichever is later, so a more causal
// activity ending mid-segment takes over at its end. Gaps with no
// active span are attributed to Idle. Every tie is broken
// deterministically, so the same spans always yield the same path.
func CriticalPath(spans []trace.Span) *CritPath {
	cp := &CritPath{}
	if len(spans) == 0 {
		return cp
	}

	// Window over all spans; activities filtered and ordered by end
	// descending (insertion order of the sweep).
	lo, hi := spans[0].Start, spans[0].End
	acts := make([]act, 0, len(spans))
	for i := range spans {
		s := &spans[i]
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
		c, prio, ok := categoryOf(s.Cat)
		if !ok || s.End <= s.Start {
			continue
		}
		acts = append(acts, act{start: s.Start, end: s.End,
			cat: c, prio: prio, name: s.Name, pid: s.PID, seq: i})
	}
	cp.Start, cp.End = lo, hi
	if hi <= lo {
		return cp
	}
	// Sort by end descending, recording order on ties.
	sortActs(acts)

	var heap actHeap
	cursor := hi
	i := 0
	for cursor > lo {
		for i < len(acts) && acts[i].end >= cursor {
			heap.push(acts[i])
			i++
		}
		// Discard activities that cannot cover any time below the
		// cursor. They start at or after it, and the cursor only
		// decreases, so they are permanently dead.
		for len(heap) > 0 && heap[0].start >= cursor {
			heap.pop()
		}
		if len(heap) == 0 {
			next := lo
			if i < len(acts) && acts[i].end > lo {
				next = acts[i].end
			}
			cp.addSegment(Segment{Start: next, End: cursor, Cat: Idle})
			cursor = next
			continue
		}
		best := heap[0]
		segLo := best.start
		if i < len(acts) && acts[i].end > segLo {
			// A not-yet-active span ends inside the segment; stop there
			// and re-evaluate, since it may attribute better.
			segLo = acts[i].end
		}
		cp.addSegment(Segment{Start: segLo, End: cursor,
			Cat: best.cat, Name: best.name, PID: best.pid})
		cursor = segLo
	}
	// The sweep built segments in reverse; flip to ascending time.
	for a, b := 0, len(cp.Segments)-1; a < b; a, b = a+1, b-1 {
		cp.Segments[a], cp.Segments[b] = cp.Segments[b], cp.Segments[a]
	}
	return cp
}

// sortActs orders activities by end descending, then recording order.
func sortActs(acts []act) {
	sortSlice(acts, func(a, b act) bool {
		if a.end != b.end {
			return a.end > b.end
		}
		return a.seq < b.seq
	})
}

// sortSlice sorts s under a deterministic comparator.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

func (cp *CritPath) addSegment(s Segment) {
	cp.byCat[s.Cat] += s.Dur()
	// Merge with the previous segment when it continues the same
	// attribution, keeping the segment list compact.
	if n := len(cp.Segments); n > 0 {
		p := &cp.Segments[n-1]
		if p.Start == s.End && p.Cat == s.Cat && p.Name == s.Name && p.PID == s.PID {
			p.Start = s.Start
			return
		}
	}
	cp.Segments = append(cp.Segments, s)
}

// Makespan returns the analysis window length in picoseconds.
func (cp *CritPath) Makespan() int64 { return cp.End - cp.Start }

// CategoryTime returns the critical-path picoseconds attributed to c.
func (cp *CritPath) CategoryTime(c Category) int64 { return cp.byCat[c] }

// Share is one category's critical-path slice.
type Share struct {
	Cat  Category
	Ps   int64
	Frac float64 // of the makespan; all shares (plus idle) sum to 1
}

// Shares returns every category with non-zero critical-path time, in
// report order (idle last). Fractions sum to exactly 1 up to float
// rounding because the segments tile the window.
func (cp *CritPath) Shares() []Share {
	mk := cp.Makespan()
	if mk <= 0 {
		return nil
	}
	var out []Share
	for c := Category(0); c < numCategories; c++ {
		if cp.byCat[c] == 0 {
			continue
		}
		out = append(out, Share{Cat: c, Ps: cp.byCat[c],
			Frac: float64(cp.byCat[c]) / float64(mk)})
	}
	return out
}

// Contributor is one (component, activity, category) aggregate on the
// critical path.
type Contributor struct {
	PID  int
	Name string
	Cat  Category
	Ps   int64
	Frac float64
}

// TopContributors aggregates critical-path time by (PID, name,
// category) and returns the k largest, ties broken by PID then name for
// stable output. Idle segments are excluded.
func (cp *CritPath) TopContributors(k int) []Contributor {
	type ckey struct {
		pid  int
		name string
		cat  Category
	}
	agg := map[ckey]int64{}
	for _, s := range cp.Segments {
		if s.Cat == Idle {
			continue
		}
		agg[ckey{s.PID, s.Name, s.Cat}] += s.Dur()
	}
	mk := cp.Makespan()
	out := make([]Contributor, 0, len(agg))
	for key, ps := range agg {
		fr := 0.0
		if mk > 0 {
			fr = float64(ps) / float64(mk)
		}
		out = append(out, Contributor{PID: key.pid, Name: key.name, Cat: key.cat, Ps: ps, Frac: fr})
	}
	sortSlice(out, func(a, b Contributor) bool {
		if a.Ps != b.Ps {
			return a.Ps > b.Ps
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Cat < b.Cat
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// WhatIf returns the estimated makespan fraction remaining if every
// critical-path segment of category c ran speedup× faster — the
// Amdahl's-law bound new/old = 1 - s + s/k, where s is c's share.
// Contention the speedup would reshuffle is not modelled; this is the
// optimistic bound a bottleneck claim must survive.
func (cp *CritPath) WhatIf(c Category, speedup float64) float64 {
	mk := cp.Makespan()
	if mk <= 0 || speedup <= 0 {
		return 1
	}
	s := float64(cp.byCat[c]) / float64(mk)
	return 1 - s + s/speedup
}
