package fault

import (
	"reflect"
	"testing"

	"ecoscale/internal/sim"
)

var shape = Shape{Workers: 16, Rows: 8, Cols: 8, Levels: 2}

func TestEmptyPlan(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
	if !(&Plan{Seed: 7, Horizon: sim.Millisecond}).Empty() {
		t.Error("plan with no rates/events/checkpoint not empty")
	}
	if (&Plan{WorkerMTBF: sim.Millisecond}).Empty() {
		t.Error("plan with a kill rate reads empty")
	}
	if (&Plan{Checkpoint: CheckpointConfig{Interval: sim.Millisecond}}).Empty() {
		t.Error("plan with checkpointing reads empty")
	}
	if got := (&Plan{}).Schedule(shape); got != nil {
		t.Errorf("empty plan scheduled %d events", len(got))
	}
}

func TestScheduleDeterministic(t *testing.T) {
	p := &Plan{
		Seed: 99, Horizon: 5 * sim.Millisecond,
		WorkerMTBF: 300 * sim.Microsecond, MaxKills: 4,
		RegionMTBF: 200 * sim.Microsecond, MaxRegionFails: 6,
		LinkMTBF: 250 * sim.Microsecond, MaxFlaps: 3,
	}
	a := p.Schedule(shape)
	b := p.Schedule(shape)
	if len(a) == 0 {
		t.Fatal("no events scheduled")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan produced different schedules")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not time-sorted at %d", i)
		}
	}
	for _, e := range a {
		if e.Worker < 0 || e.Worker >= shape.Workers {
			t.Fatalf("victim %d out of range", e.Worker)
		}
		if e.At > p.Start+p.Horizon {
			t.Fatalf("stochastic event at %v past horizon", e.At)
		}
	}
}

// Each fault class draws from its own salted stream: changing one
// class's rate must not move another class's events.
func TestClassStreamsIndependent(t *testing.T) {
	base := &Plan{Seed: 5, Horizon: 5 * sim.Millisecond, WorkerMTBF: 400 * sim.Microsecond, MaxKills: 5}
	kills := func(evs []Event) []Event {
		var out []Event
		for _, e := range evs {
			if e.Kind == KillWorker {
				out = append(out, e)
			}
		}
		return out
	}
	a := kills(base.Schedule(shape))
	withLinks := *base
	withLinks.LinkMTBF = 100 * sim.Microsecond
	withLinks.MaxFlaps = 10
	b := kills(withLinks.Schedule(shape))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("adding link flaps changed the kill schedule")
	}
}

func TestExplicitEventsOffsetBySt(t *testing.T) {
	p := &Plan{
		Start:  sim.Millisecond,
		Events: []Event{{At: 10 * sim.Microsecond, Kind: KillWorker, Worker: 3}},
	}
	evs := p.Schedule(shape)
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].At != sim.Millisecond+10*sim.Microsecond {
		t.Errorf("explicit event at %v, want Start-relative placement", evs[0].At)
	}
	if evs[0].Worker != 3 {
		t.Errorf("victim %d", evs[0].Worker)
	}
}

func TestNegativeVictimsFilled(t *testing.T) {
	p := &Plan{Seed: 11, Events: []Event{
		{At: 1, Kind: KillWorker, Worker: -1},
		{At: 2, Kind: FailRegion, Worker: -1, Row: -1, Col: -1},
		{At: 3, Kind: FlapLink, Worker: -1, Level: -1},
	}}
	evs := p.Schedule(shape)
	for _, e := range evs {
		if e.Worker < 0 || e.Worker >= shape.Workers {
			t.Errorf("%v: worker not filled", e.Kind)
		}
		switch e.Kind {
		case FailRegion:
			if e.Row < 0 || e.Row >= shape.Rows || e.Col < 0 || e.Col >= shape.Cols {
				t.Error("region coordinates not filled")
			}
		case FlapLink:
			if e.Level < 0 || e.Level >= shape.Levels {
				t.Error("link level not filled")
			}
			if e.Down <= 0 {
				t.Error("flap duration not defaulted")
			}
		}
	}
	if !reflect.DeepEqual(evs, p.Schedule(shape)) {
		t.Error("filled victims not deterministic")
	}
}

func TestMaxCaps(t *testing.T) {
	p := &Plan{Seed: 1, Horizon: sim.Second, WorkerMTBF: sim.Microsecond, MaxKills: 7}
	if got := len(p.Schedule(shape)); got != 7 {
		t.Errorf("MaxKills=7 scheduled %d kills", got)
	}
}

func TestCheckpointNorm(t *testing.T) {
	c := CheckpointConfig{Interval: sim.Millisecond}.Norm()
	if c.Bytes != 256<<10 {
		t.Errorf("default bytes = %d", c.Bytes)
	}
	if c.RecomputeFraction != 0.5 {
		t.Errorf("default recompute fraction = %g", c.RecomputeFraction)
	}
	c2 := CheckpointConfig{Interval: sim.Millisecond, Bytes: 128, RecomputeFraction: 0.25}.Norm()
	if c2.Bytes != 128 || c2.RecomputeFraction != 0.25 {
		t.Error("Norm clobbered explicit values")
	}
}

func TestInjectorClampsPastEvents(t *testing.T) {
	eng := sim.NewEngine(1)
	eng.At(100*sim.Microsecond, func() {})
	eng.RunUntilIdle() // now = 100us
	var fired []int
	inj := NewInjector(eng, Hooks{KillWorker: func(w int) { fired = append(fired, w) }})
	inj.Arm([]Event{{At: 10 * sim.Microsecond, Kind: KillWorker, Worker: 4}})
	eng.RunUntilIdle()
	if len(fired) != 1 || fired[0] != 4 {
		t.Fatalf("past-time event fired = %v", fired)
	}
	if inj.Fired != 1 {
		t.Errorf("Fired = %d", inj.Fired)
	}
}
