package fault

import (
	"ecoscale/internal/sim"
	"ecoscale/internal/trace"
)

// CkptHooks connect the checkpointer to the machine. All callbacks are
// required except the trace plumbing on the Checkpointer itself.
type CkptHooks struct {
	// Busy reports whether the machine still has outstanding work; the
	// checkpointer stops ticking when it goes false so an idle machine
	// drains (a restartable sim must not self-perpetuate events).
	Busy func() bool
	// Workers lists the Workers to snapshot this round, sorted ascending
	// (live Workers with state worth saving).
	Workers func() []int
	// Buddy names the Worker holding w's checkpoint copy.
	Buddy func(w int) int
	// Pause and Resume quiesce a Worker's dispatch around its snapshot —
	// the checkpoint-interval cost visible in makespan.
	Pause  func(w int)
	Resume func(w int)
	// Transfer moves the snapshot bytes from w to its buddy and calls
	// done when they land.
	Transfer func(from, to, bytes int, done func())
}

// Checkpointer periodically snapshots Worker state to a buddy Worker.
// Cost model: each round pauses every active Worker for the duration of
// its own snapshot transfer (coordinated checkpointing with per-Worker
// resume); on a death, the restart penalty shrinks from "recompute since
// t=0" to "restore the snapshot + recompute since the last checkpoint".
type Checkpointer struct {
	Cfg CheckpointConfig
	// Trace, when non-nil, records one ckpt span per snapshot.
	Trace *trace.Tracer
	// Reg, when non-nil, receives fault.checkpoint* counters.
	Reg *trace.Registry

	eng   *sim.Engine
	hooks CkptHooks
	last  map[int]sim.Time
	// Rounds and Checkpoints count completed ticks and per-Worker
	// snapshots.
	Rounds      int
	Checkpoints int
	running     bool
}

// NewCheckpointer creates a checkpointer; call Start to begin ticking.
func NewCheckpointer(eng *sim.Engine, cfg CheckpointConfig, hooks CkptHooks) *Checkpointer {
	return &Checkpointer{Cfg: cfg.Norm(), eng: eng, hooks: hooks, last: map[int]sim.Time{}}
}

// Start begins periodic checkpointing; a no-op when Interval <= 0.
func (c *Checkpointer) Start() {
	if c.Cfg.Interval <= 0 || c.running {
		return
	}
	c.running = true
	c.eng.After(c.Cfg.Interval, c.tick)
}

// Stop halts ticking.
func (c *Checkpointer) Stop() { c.running = false }

// Has reports whether w has a completed checkpoint.
func (c *Checkpointer) Has(w int) bool { _, ok := c.last[w]; return ok }

// LastAt returns the snapshot time of w's most recent checkpoint.
func (c *Checkpointer) LastAt(w int) sim.Time { return c.last[w] }

func (c *Checkpointer) tick() {
	if !c.running {
		return
	}
	if !c.hooks.Busy() {
		// Idle machine: stop rather than keep the engine alive forever.
		c.running = false
		return
	}
	c.Rounds++
	snap := c.eng.Now()
	for _, w := range c.hooks.Workers() {
		w := w
		c.hooks.Pause(w)
		c.hooks.Transfer(w, c.hooks.Buddy(w), c.Cfg.Bytes, func() {
			c.last[w] = snap
			c.Checkpoints++
			if c.Trace != nil {
				c.Trace.Add(trace.Span{Name: "checkpoint", Cat: trace.CatCkpt,
					Start: int64(snap), End: int64(c.eng.Now()),
					PID: trace.WorkerPID(w), TID: trace.TIDDMA, Arg: int64(c.Cfg.Bytes)})
			}
			if c.Reg != nil {
				c.Reg.Counter("fault.checkpoints").Inc()
				c.Reg.Counter("fault.checkpoint_bytes").Add(uint64(c.Cfg.Bytes))
			}
			c.hooks.Resume(w)
		})
	}
	c.eng.After(c.Cfg.Interval, c.tick)
}
