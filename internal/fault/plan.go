// Package fault is the deterministic fault-injection layer: a
// declarative Plan of Worker deaths, fabric-region failures, and NoC
// link flaps is expanded — off the simulation clock, with a per-class
// seeded RNG — into a concrete fault schedule, and an Injector arms that
// schedule on the engine. Determinism is the whole point: the same seed
// yields the same fault times and the same victims, so a resilience
// experiment is as replayable as a fault-free one. Recovery itself lives
// with the subsystems it exercises (rts evacuation, unimem page
// migration, fabric re-floorplanning); this package only decides what
// breaks, when.
package fault

import (
	"sort"

	"ecoscale/internal/sim"
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds.
const (
	// KillWorker fail-stops a Worker: CPU, fabric, and DRAM ownership all
	// need recovery.
	KillWorker Kind = iota
	// FailRegion permanently disables one reconfigurable region of a
	// Worker's fabric, killing the module placed there.
	FailRegion
	// FlapLink takes one interconnect link out of service transiently;
	// traffic queues behind the outage and drains when it lifts.
	FlapLink
)

func (k Kind) String() string {
	switch k {
	case KillWorker:
		return "kill-worker"
	case FailRegion:
		return "fail-region"
	default:
		return "flap-link"
	}
}

// Event is one concrete scheduled fault.
type Event struct {
	At   sim.Time
	Kind Kind
	// Worker is the victim Worker (all kinds).
	Worker int
	// Row, Col name the failed region (FailRegion).
	Row, Col int
	// Level is the interconnect level of the flapped link (FlapLink).
	Level int
	// Down is the outage duration (FlapLink).
	Down sim.Time
}

// CheckpointConfig parameterizes periodic checkpoint/restart.
type CheckpointConfig struct {
	// Interval is the checkpoint period; 0 disables checkpointing.
	Interval sim.Time
	// Bytes is the per-Worker snapshot size transferred to the buddy.
	Bytes int
	// RecomputeFraction is the share of the time since the last
	// checkpoint (or since t=0 without one) a restarted Worker's lost
	// work costs to redo.
	RecomputeFraction float64
}

// Norm fills config defaults: 256 KiB snapshots, half the lost interval
// recomputed.
func (c CheckpointConfig) Norm() CheckpointConfig {
	if c.Bytes <= 0 {
		c.Bytes = 256 << 10
	}
	if c.RecomputeFraction <= 0 {
		c.RecomputeFraction = 0.5
	}
	return c
}

// Plan declares the faults to inject. Stochastic rates (MTBFs) are
// expanded into concrete events by Schedule using only the plan's own
// seed; explicit Events are merged in as-is. The zero Plan is inert.
type Plan struct {
	// Seed drives every random draw of the expansion; the engine's RNG is
	// never touched, so arming a plan cannot perturb workload randomness.
	Seed int64
	// Start offsets the whole schedule (e.g. past the deployment phase).
	Start sim.Time
	// Horizon bounds the window after Start in which stochastic faults
	// occur. Explicit Events are not clipped.
	Horizon sim.Time

	// WorkerMTBF is the mean time between Worker deaths; 0 disables.
	WorkerMTBF sim.Time
	// MaxKills caps stochastic Worker deaths; 0 means no cap.
	MaxKills int

	// RegionMTBF is the mean time between fabric-region failures.
	RegionMTBF sim.Time
	// MaxRegionFails caps stochastic region failures; 0 means no cap.
	MaxRegionFails int

	// LinkMTBF is the mean time between link flaps.
	LinkMTBF sim.Time
	// LinkDown is each flap's outage duration (default 50µs).
	LinkDown sim.Time
	// MaxFlaps caps stochastic link flaps; 0 means no cap.
	MaxFlaps int

	// Checkpoint enables periodic checkpointing when Interval > 0.
	Checkpoint CheckpointConfig

	// Events are explicit faults merged into the schedule. Negative
	// victim fields (Worker, Row/Col, Level) are drawn from the seed.
	Events []Event
}

// Empty reports whether the plan injects nothing and checkpoints
// nothing — the machine must behave byte-identically to one that never
// saw the plan.
func (p *Plan) Empty() bool {
	return p == nil ||
		(p.WorkerMTBF == 0 && p.RegionMTBF == 0 && p.LinkMTBF == 0 &&
			len(p.Events) == 0 && p.Checkpoint.Interval == 0)
}

// Shape describes the machine the schedule draws victims from.
type Shape struct {
	Workers    int
	Rows, Cols int
	// Levels is the interconnect depth (tree MaxHops); 0 disables flaps.
	Levels int
}

// Per-class seed salts: each fault class gets an independent stream, so
// e.g. raising the link-flap rate cannot shift which Workers die.
const (
	saltKill   = 0x6b696c6c
	saltRegion = 0x72656769
	saltLink   = 0x6c696e6b
	saltFill   = 0x66696c6c
)

// Schedule expands the plan into the concrete, time-sorted fault list
// for a machine of the given shape. Pure: no engine, no global state —
// calling it twice yields identical slices.
func (p *Plan) Schedule(sh Shape) []Event {
	if p.Empty() {
		return nil
	}
	var out []Event
	horizon := p.Horizon
	if horizon <= 0 {
		horizon = 10 * sim.Millisecond
	}
	if p.WorkerMTBF > 0 && sh.Workers > 0 {
		rng := sim.NewRNG(p.Seed ^ saltKill)
		t := p.Start
		for n := 0; p.MaxKills == 0 || n < p.MaxKills; n++ {
			t += sim.Time(rng.ExpFloat64() * float64(p.WorkerMTBF))
			if t > p.Start+horizon {
				break
			}
			out = append(out, Event{At: t, Kind: KillWorker, Worker: rng.Intn(sh.Workers)})
		}
	}
	if p.RegionMTBF > 0 && sh.Workers > 0 && sh.Rows > 0 && sh.Cols > 0 {
		rng := sim.NewRNG(p.Seed ^ saltRegion)
		t := p.Start
		for n := 0; p.MaxRegionFails == 0 || n < p.MaxRegionFails; n++ {
			t += sim.Time(rng.ExpFloat64() * float64(p.RegionMTBF))
			if t > p.Start+horizon {
				break
			}
			out = append(out, Event{At: t, Kind: FailRegion,
				Worker: rng.Intn(sh.Workers), Row: rng.Intn(sh.Rows), Col: rng.Intn(sh.Cols)})
		}
	}
	if p.LinkMTBF > 0 && sh.Workers > 0 && sh.Levels > 0 {
		rng := sim.NewRNG(p.Seed ^ saltLink)
		down := p.LinkDown
		if down <= 0 {
			down = 50 * sim.Microsecond
		}
		t := p.Start
		for n := 0; p.MaxFlaps == 0 || n < p.MaxFlaps; n++ {
			t += sim.Time(rng.ExpFloat64() * float64(p.LinkMTBF))
			if t > p.Start+horizon {
				break
			}
			out = append(out, Event{At: t, Kind: FlapLink,
				Worker: rng.Intn(sh.Workers), Level: rng.Intn(sh.Levels), Down: down})
		}
	}
	if len(p.Events) > 0 {
		rng := sim.NewRNG(p.Seed ^ saltFill)
		for _, e := range p.Events {
			if e.Worker < 0 && sh.Workers > 0 {
				e.Worker = rng.Intn(sh.Workers)
			}
			if e.Kind == FailRegion {
				if e.Row < 0 && sh.Rows > 0 {
					e.Row = rng.Intn(sh.Rows)
				}
				if e.Col < 0 && sh.Cols > 0 {
					e.Col = rng.Intn(sh.Cols)
				}
			}
			if e.Kind == FlapLink {
				if e.Level < 0 && sh.Levels > 0 {
					e.Level = rng.Intn(sh.Levels)
				}
				if e.Down <= 0 {
					e.Down = 50 * sim.Microsecond
				}
			}
			e.At += p.Start
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}
