package fault

import (
	"ecoscale/internal/sim"
)

// Hooks are the machine-side fault handlers the Injector drives. Each
// receives one scheduled event's parameters at its scheduled time; the
// recovery they trigger is the subsystems' business.
type Hooks struct {
	KillWorker func(w int)
	FailRegion func(w, row, col int)
	FlapLink   func(w, level int, down sim.Time)
}

// Injector arms a fault schedule on an engine.
type Injector struct {
	eng   *sim.Engine
	hooks Hooks
	// Fired counts events delivered so far.
	Fired int
	// Armed is the schedule being delivered.
	Armed []Event
}

// NewInjector creates an injector delivering to hooks.
func NewInjector(eng *sim.Engine, hooks Hooks) *Injector {
	return &Injector{eng: eng, hooks: hooks}
}

// Arm schedules every event in the list. Event times already in the past
// are clamped to now (the engine cannot run backwards); ordering within
// a tick follows the schedule's sort. Returns the armed event count.
func (in *Injector) Arm(events []Event) int {
	now := in.eng.Now()
	for i := range events {
		e := events[i]
		at := e.At
		if at < now {
			at = now
		}
		in.eng.At(at, func() { in.deliver(e) })
	}
	in.Armed = append(in.Armed, events...)
	return len(events)
}

func (in *Injector) deliver(e Event) {
	in.Fired++
	switch e.Kind {
	case KillWorker:
		if in.hooks.KillWorker != nil {
			in.hooks.KillWorker(e.Worker)
		}
	case FailRegion:
		if in.hooks.FailRegion != nil {
			in.hooks.FailRegion(e.Worker, e.Row, e.Col)
		}
	case FlapLink:
		if in.hooks.FlapLink != nil {
			in.hooks.FlapLink(e.Worker, e.Level, e.Down)
		}
	}
}
