// Package perfmodel implements the input-dependent execution-time and
// energy models of §4.2: "We intend to use an array of regression, SVM
// and PCA techniques for this purpose" — models trained on observed runs
// (input size/shape → time, power) that let the runtime scheduler
// "judiciously and dynamically select and distribute functions for
// hardware acceleration".
//
// Three families are provided, stdlib-only: ordinary/ridge least squares
// (normal equations with Gaussian elimination), principal component
// analysis (power iteration with deflation) for feature reduction, and a
// linear soft-margin SVM trained by SGD for the binary "will hardware
// beat software?" decision.
package perfmodel

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadShape reports inconsistent training data.
var ErrBadShape = errors.New("perfmodel: inconsistent data shape")

// Regression is a linear model y = w·x + b fit by (ridge) least squares.
type Regression struct {
	// Lambda is the ridge penalty; 0 gives ordinary least squares.
	Lambda float64

	W []float64
	B float64

	fitted bool
}

// Fit solves the normal equations over rows X (n×d) and targets y (n).
func (r *Regression) Fit(x [][]float64, y []float64) error {
	n := len(x)
	if n == 0 || len(y) != n {
		return ErrBadShape
	}
	d := len(x[0])
	for _, row := range x {
		if len(row) != d {
			return ErrBadShape
		}
	}
	// Augment with a bias column: solve (A^T A + λI) w = A^T y.
	dim := d + 1
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	aty := make([]float64, dim)
	row := make([]float64, dim)
	for k := 0; k < n; k++ {
		copy(row, x[k])
		row[d] = 1
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * y[k]
		}
	}
	for i := 0; i < d; i++ { // do not regularize the bias
		ata[i][i] += r.Lambda
	}
	w, err := solve(ata, aty)
	if err != nil {
		return err
	}
	r.W = w[:d]
	r.B = w[d]
	r.fitted = true
	return nil
}

// Predict evaluates the model; it panics if called before Fit succeeds.
func (r *Regression) Predict(x []float64) float64 {
	if !r.fitted {
		panic("perfmodel: Predict before Fit")
	}
	if len(x) != len(r.W) {
		panic(fmt.Sprintf("perfmodel: feature dim %d, model dim %d", len(x), len(r.W)))
	}
	s := r.B
	for i, v := range x {
		s += r.W[i] * v
	}
	return s
}

// R2 returns the coefficient of determination on a dataset.
func (r *Regression) R2(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range x {
		d := y[i] - r.Predict(x[i])
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// (a | b).
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, errors.New("perfmodel: singular system (collinear features?)")
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// PCA computes the top-k principal components by power iteration with
// deflation.
type PCA struct {
	Components [][]float64 // k rows of d
	Mean       []float64
	Variances  []float64 // explained variance per component
}

// FitPCA computes k components of x (n×d rows).
func FitPCA(x [][]float64, k int) (*PCA, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrBadShape
	}
	d := len(x[0])
	if k <= 0 || k > d {
		return nil, fmt.Errorf("perfmodel: k=%d out of range for %d features", k, d)
	}
	mean := make([]float64, d)
	for _, row := range x {
		if len(row) != d {
			return nil, ErrBadShape
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	// Covariance matrix.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range x {
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov[i][j] += (row[i] - mean[i]) * (row[j] - mean[j])
			}
		}
	}
	for i := range cov {
		for j := range cov[i] {
			cov[i][j] /= float64(n)
		}
	}
	p := &PCA{Mean: mean}
	for c := 0; c < k; c++ {
		vec, val := powerIterate(cov)
		if val <= 1e-12 {
			break
		}
		p.Components = append(p.Components, vec)
		p.Variances = append(p.Variances, val)
		// Deflate: cov -= val * vec vecᵀ.
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov[i][j] -= val * vec[i] * vec[j]
			}
		}
	}
	if len(p.Components) == 0 {
		return nil, errors.New("perfmodel: data has no variance")
	}
	return p, nil
}

func powerIterate(m [][]float64) ([]float64, float64) {
	d := len(m)
	v := make([]float64, d)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(d))
	}
	var val float64
	for iter := 0; iter < 500; iter++ {
		next := make([]float64, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				next[i] += m[i][j] * v[j]
			}
		}
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-15 {
			return v, 0
		}
		for i := range next {
			next[i] /= norm
		}
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - v[i])
		}
		v = next
		val = norm
		if diff < 1e-12 {
			break
		}
	}
	return v, val
}

// Project maps a sample onto the fitted components.
func (p *PCA) Project(x []float64) []float64 {
	out := make([]float64, len(p.Components))
	for c, comp := range p.Components {
		var s float64
		for j, v := range x {
			s += (v - p.Mean[j]) * comp[j]
		}
		out[c] = s
	}
	return out
}

// SVM is a linear soft-margin classifier trained by SGD on hinge loss.
// Labels are ±1.
type SVM struct {
	W      []float64
	B      float64
	C      float64 // regularization trade-off (default 1)
	Epochs int     // default 200
}

// Fit trains on rows x with labels y in {-1, +1}.
func (s *SVM) Fit(x [][]float64, y []float64) error {
	n := len(x)
	if n == 0 || len(y) != n {
		return ErrBadShape
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return ErrBadShape
		}
		if y[i] != 1 && y[i] != -1 {
			return fmt.Errorf("perfmodel: SVM label %v not in {-1,+1}", y[i])
		}
	}
	if s.C == 0 {
		s.C = 1
	}
	if s.Epochs == 0 {
		s.Epochs = 200
	}
	s.W = make([]float64, d)
	s.B = 0
	lambda := 1 / (s.C * float64(n))
	t := 0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		for i := 0; i < n; i++ {
			t++
			eta := 1 / (lambda * float64(t))
			margin := s.B
			for j, v := range x[i] {
				margin += s.W[j] * v
			}
			margin *= y[i]
			for j := range s.W {
				s.W[j] -= eta * lambda * s.W[j]
			}
			if margin < 1 {
				for j, v := range x[i] {
					s.W[j] += eta * y[i] * v
				}
				s.B += eta * y[i]
			}
		}
	}
	return nil
}

// Decision returns the signed margin for x.
func (s *SVM) Decision(x []float64) float64 {
	v := s.B
	for j, w := range s.W {
		v += w * x[j]
	}
	return v
}

// Predict returns the class label (+1 or -1) for x.
func (s *SVM) Predict(x []float64) float64 {
	if s.Decision(x) >= 0 {
		return 1
	}
	return -1
}
