package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"ecoscale/internal/sim"
)

func TestRegressionExactLinear(t *testing.T) {
	// y = 3x0 - 2x1 + 7 recovered exactly from noiseless data.
	var x [][]float64
	var y []float64
	rng := sim.NewRNG(1)
	for i := 0; i < 50; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 3*a-2*b+7)
	}
	var r Regression
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.W[0]-3) > 1e-6 || math.Abs(r.W[1]+2) > 1e-6 || math.Abs(r.B-7) > 1e-6 {
		t.Errorf("W=%v B=%v, want [3 -2] 7", r.W, r.B)
	}
	if r2 := r.R2(x, y); r2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", r2)
	}
	if p := r.Predict([]float64{1, 1}); math.Abs(p-8) > 1e-6 {
		t.Errorf("Predict(1,1) = %v, want 8", p)
	}
}

func TestRegressionNoisy(t *testing.T) {
	rng := sim.NewRNG(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a := rng.Float64() * 100
		x = append(x, []float64{a})
		y = append(y, 5*a+10+rng.NormFloat64()*2)
	}
	var r Regression
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.W[0]-5) > 0.1 || math.Abs(r.B-10) > 2 {
		t.Errorf("W=%v B=%v, want ~[5] ~10", r.W, r.B)
	}
	if r2 := r.R2(x, y); r2 < 0.99 {
		t.Errorf("R2 = %v", r2)
	}
}

func TestRidgeShrinks(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{2, 4, 6, 8}
	var ols, ridge Regression
	ridge.Lambda = 100
	if err := ols.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := ridge.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridge.W[0]) >= math.Abs(ols.W[0]) {
		t.Errorf("ridge |w|=%v should shrink below OLS |w|=%v", ridge.W[0], ols.W[0])
	}
}

func TestRegressionErrors(t *testing.T) {
	var r Regression
	if err := r.Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if err := r.Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
	if err := r.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched y should error")
	}
	// Collinear features → singular.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if err := r.Fit(x, []float64{1, 2, 3}); err == nil {
		t.Error("collinear features should error")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	var r Regression
	defer func() {
		if recover() == nil {
			t.Error("Predict before Fit did not panic")
		}
	}()
	r.Predict([]float64{1})
}

func TestPredictDimPanics(t *testing.T) {
	var r Regression
	if err := r.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch did not panic")
		}
	}()
	r.Predict([]float64{1, 2})
}

// Property: regression on exactly-linear data predicts within tolerance
// for arbitrary in-range queries.
func TestRegressionProperty(t *testing.T) {
	rng := sim.NewRNG(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 1.5*a+0.5*b-3)
	}
	var r Regression
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	prop := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%1000) / 100
		b := float64(bRaw%1000) / 100
		return math.Abs(r.Predict([]float64{a, b})-(1.5*a+0.5*b-3)) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPCARecoverDirection(t *testing.T) {
	// Points on a line y=2x plus tiny noise: first PC ≈ (1,2)/√5.
	rng := sim.NewRNG(4)
	var x [][]float64
	for i := 0; i < 300; i++ {
		a := rng.NormFloat64()
		x = append(x, []float64{a + 0.01*rng.NormFloat64(), 2*a + 0.01*rng.NormFloat64()})
	}
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Components[0]
	want := []float64{1 / math.Sqrt(5), 2 / math.Sqrt(5)}
	dot := c[0]*want[0] + c[1]*want[1]
	if math.Abs(math.Abs(dot)-1) > 1e-3 {
		t.Errorf("first PC %v not aligned with (1,2): |dot|=%v", c, math.Abs(dot))
	}
	if len(p.Variances) >= 2 && p.Variances[1] > p.Variances[0]*0.01 {
		t.Errorf("second PC variance %v should be tiny vs %v", p.Variances[1], p.Variances[0])
	}
}

func TestPCAProject(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	p, err := FitPCA(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Projection of the mean is 0; points spread symmetrically.
	proj := p.Project([]float64{1.5, 1.5})
	if math.Abs(proj[0]) > 1e-9 {
		t.Errorf("mean projects to %v, want 0", proj[0])
	}
	a := p.Project([]float64{0, 0})[0]
	b := p.Project([]float64{3, 3})[0]
	if math.Abs(a+b) > 1e-9 {
		t.Errorf("symmetric points project to %v, %v", a, b)
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 1); err == nil {
		t.Error("empty PCA should error")
	}
	if _, err := FitPCA([][]float64{{1, 2}}, 3); err == nil {
		t.Error("k > d should error")
	}
	if _, err := FitPCA([][]float64{{1}, {1}, {1}}, 1); err == nil {
		t.Error("zero-variance data should error")
	}
	if _, err := FitPCA([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestSVMSeparable(t *testing.T) {
	// Separable: class +1 when x0 + x1 > 10.
	rng := sim.NewRNG(5)
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		if a+b > 10 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	var s SVM
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if s.Predict(x[i]) == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(x))
	if acc < 0.95 {
		t.Errorf("training accuracy %.2f too low for separable data", acc)
	}
	if s.Predict([]float64{9, 9}) != 1 || s.Predict([]float64{1, 1}) != -1 {
		t.Error("obvious points misclassified")
	}
}

func TestSVMErrors(t *testing.T) {
	var s SVM
	if err := s.Fit(nil, nil); err == nil {
		t.Error("empty SVM fit should error")
	}
	if err := s.Fit([][]float64{{1}}, []float64{0.5}); err == nil {
		t.Error("non ±1 labels should error")
	}
	if err := s.Fit([][]float64{{1}, {2, 3}}, []float64{1, -1}); err == nil {
		t.Error("ragged SVM rows should error")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1 → x=2, y=1.
	x, err := solve([][]float64{{2, 1}, {1, -1}}, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("solve = %v, want [2 1]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	if _, err := solve([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); err == nil {
		t.Error("singular system should error")
	}
}
