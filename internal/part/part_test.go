package part

import (
	"testing"
	"testing/quick"

	"ecoscale/internal/topo"
)

func TestStripsCoverAndBalance(t *testing.T) {
	p := Strips(16, 16, 4)
	seen := map[int]int{}
	for _, o := range p.Assign {
		if o < 0 || o >= 4 {
			t.Fatalf("owner %d out of range", o)
		}
		seen[o]++
	}
	if len(seen) != 4 {
		t.Errorf("only %d workers used", len(seen))
	}
	for w, c := range seen {
		if c != 64 {
			t.Errorf("worker %d owns %d cells, want 64", w, c)
		}
	}
	s := p.Evaluate(topo.Flat{Workers: 4})
	if s.Balance != 1.0 {
		t.Errorf("balance = %v", s.Balance)
	}
	// 3 internal strip boundaries × 16 cells.
	if s.BoundaryCells != 48 {
		t.Errorf("boundary cells = %d, want 48", s.BoundaryCells)
	}
}

func TestTilesLowerBoundaryThanStrips(t *testing.T) {
	// 2D tiles have better surface-to-volume than 1D strips for P ≥ 4.
	strips := Strips(64, 64, 16).Evaluate(topo.Flat{Workers: 16})
	tiles := Tiles(64, 64, 16).Evaluate(topo.Flat{Workers: 16})
	if tiles.BoundaryCells >= strips.BoundaryCells {
		t.Errorf("tiles boundary (%d) should be below strips (%d)",
			tiles.BoundaryCells, strips.BoundaryCells)
	}
}

func TestHierarchicalMatchesTree(t *testing.T) {
	tree := topo.NewTree(4, 4, 4) // 64 workers
	p := Hierarchical(64, 64, tree)
	seen := map[int]bool{}
	for _, o := range p.Assign {
		seen[o] = true
	}
	if len(seen) != 64 {
		t.Fatalf("hierarchical used %d/64 workers", len(seen))
	}
	s := p.Evaluate(tree)
	if s.Balance > 1.05 {
		t.Errorf("balance %v too skewed", s.Balance)
	}
}

// The E1 headline: on a tree machine, hierarchical partitioning yields
// lower weighted (traffic × distance) cost than both strips and
// topology-blind tiles.
func TestHierarchicalReducesWeightedHops(t *testing.T) {
	tree := topo.NewTree(4, 4, 4)
	hier := Hierarchical(128, 128, tree).Evaluate(tree)
	tiles := Tiles(128, 128, 64).Evaluate(tree)
	strips := Strips(128, 128, 64).Evaluate(tree)
	if hier.WeightedHops >= tiles.WeightedHops {
		t.Errorf("hier weighted hops (%d) should be below blind tiles (%d)",
			hier.WeightedHops, tiles.WeightedHops)
	}
	if hier.WeightedHops >= strips.WeightedHops {
		t.Errorf("hier weighted hops (%d) should be below strips (%d)",
			hier.WeightedHops, strips.WeightedHops)
	}
	if hier.MeanHops() >= tiles.MeanHops() {
		t.Errorf("hier mean hops (%.2f) should be below tiles (%.2f)",
			hier.MeanHops(), tiles.MeanHops())
	}
}

func TestOwnerAccessor(t *testing.T) {
	p := Tiles(8, 8, 4)
	if p.Owner(0, 0) != 0 {
		t.Error("origin not owned by worker 0")
	}
	if p.Owner(7, 7) != 3 {
		t.Errorf("far corner owned by %d, want 3", p.Owner(7, 7))
	}
}

func TestEvaluatePanicsOnSmallTopology(t *testing.T) {
	p := Tiles(8, 8, 16)
	defer func() {
		if recover() == nil {
			t.Error("small topology did not panic")
		}
	}()
	p.Evaluate(topo.Flat{Workers: 4})
}

func TestNewPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid shape did not panic")
		}
	}()
	Strips(0, 4, 2)
}

func TestMeanHopsEmpty(t *testing.T) {
	if (Stats{}).MeanHops() != 0 {
		t.Error("empty stats mean hops should be 0")
	}
}

// Property: every partitioner assigns every cell to a valid worker and
// uses all workers when the domain is large enough.
func TestPartitionValidityProperty(t *testing.T) {
	prop := func(wRaw, hRaw, fanRaw uint8) bool {
		fan := int(fanRaw%3) + 2 // 2..4
		tree := topo.NewTree(fan, fan)
		workers := tree.NumWorkers()
		w := int(wRaw%32) + workers
		h := int(hRaw%32) + workers
		for _, p := range []*Partition{
			Strips(w, h, workers),
			Tiles(w, h, workers),
			Hierarchical(w, h, tree),
		} {
			seen := map[int]bool{}
			for _, o := range p.Assign {
				if o < 0 || o >= workers {
					return false
				}
				seen[o] = true
			}
			if len(seen) != workers {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: hierarchical never loses to blind tiles on weighted hops for
// square domains on balanced trees.
func TestHierarchicalDominanceProperty(t *testing.T) {
	prop := func(fanRaw, sizeRaw uint8) bool {
		fan := int(fanRaw%3) + 2
		tree := topo.NewTree(fan, fan)
		n := int(sizeRaw%48) + tree.NumWorkers()
		hier := Hierarchical(n, n, tree).Evaluate(tree)
		tiles := Tiles(n, n, tree.NumWorkers()).Evaluate(tree)
		return hier.WeightedHops <= tiles.WeightedHops
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
