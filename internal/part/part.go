// Package part implements the application-side partitioning of Fig. 1
// and §2(2): hierarchical, topology-matched domain decomposition —
// "Instead of a flat partitioning of the application domain, we foresee
// that future large-scale HPC applications will perform hierarchical and
// topological partitioning of their data into domains, to reduce
// communication distance and latency ... This hierarchical partitioning
// can significantly reduce the communication overhead."
//
// Three decompositions of a 2D cell domain are provided for E1: 1D
// strips (flat), 2D tiles assigned row-major (shape-aware but
// topology-blind), and the hierarchical partitioner that recursively
// splits the domain following the machine tree so that domain
// neighbours are also tree neighbours.
package part

import (
	"fmt"
	"math"

	"ecoscale/internal/topo"
)

// Partition assigns every cell of a W×H domain to one of P workers.
type Partition struct {
	Name string
	W, H int
	P    int
	// Assign[y*W+x] is the owning worker of cell (x, y).
	Assign []int
}

// Owner returns the worker owning cell (x, y).
func (p *Partition) Owner(x, y int) int { return p.Assign[y*p.W+x] }

func newPartition(name string, w, h, workers int) *Partition {
	if w <= 0 || h <= 0 || workers <= 0 {
		panic("part: domain and worker count must be positive")
	}
	return &Partition{Name: name, W: w, H: h, P: workers, Assign: make([]int, w*h)}
}

// Strips decomposes the domain into P horizontal strips — the flat 1D
// partitioning baseline.
func Strips(w, h, workers int) *Partition {
	p := newPartition("strips", w, h, workers)
	for y := 0; y < h; y++ {
		owner := y * workers / h
		for x := 0; x < w; x++ {
			p.Assign[y*w+x] = owner
		}
	}
	return p
}

// tileGrid returns the most square pr×pc factorization of workers.
func tileGrid(workers int) (pr, pc int) {
	pr = int(math.Sqrt(float64(workers)))
	for pr > 1 && workers%pr != 0 {
		pr--
	}
	if pr < 1 {
		pr = 1
	}
	return pr, workers / pr
}

// Tiles decomposes the domain into a near-square 2D grid of tiles
// assigned to workers in row-major order — good surface-to-volume, but
// blind to the machine topology.
func Tiles(w, h, workers int) *Partition {
	p := newPartition("tiles", w, h, workers)
	pr, pc := tileGrid(workers)
	for y := 0; y < h; y++ {
		ty := y * pr / h
		for x := 0; x < w; x++ {
			tx := x * pc / w
			p.Assign[y*w+x] = ty*pc + tx
		}
	}
	return p
}

// Hierarchical decomposes the domain by recursive bisection following
// the machine tree: at each tree level the current rectangle splits into
// fan-out sub-rectangles along its longer axis, so that workers that are
// close in the tree own adjacent sub-domains (Fig. 1).
func Hierarchical(w, h int, tree *topo.Tree) *Partition {
	p := newPartition(fmt.Sprintf("hier[%s]", tree.Name()), w, h, tree.NumWorkers())
	var cut func(x0, y0, x1, y1, level, firstWorker int)
	cut = func(x0, y0, x1, y1, level, firstWorker int) {
		if level == 0 {
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					p.Assign[y*w+x] = firstWorker
				}
			}
			return
		}
		fan := tree.FanOut[level-1]
		sub := tree.GroupSize(level - 1)
		// Split into a near-square fr×fc grid of sub-rectangles, with
		// the larger factor along the region's longer axis, so blocks
		// keep good surface-to-volume at every level.
		fr, fc := tileGrid(fan)
		if (x1-x0 >= y1-y0) != (fc >= fr) {
			fr, fc = fc, fr
		}
		for r := 0; r < fr; r++ {
			sy0 := y0 + (y1-y0)*r/fr
			sy1 := y0 + (y1-y0)*(r+1)/fr
			for cc := 0; cc < fc; cc++ {
				sx0 := x0 + (x1-x0)*cc/fc
				sx1 := x0 + (x1-x0)*(cc+1)/fc
				cut(sx0, sy0, sx1, sy1, level-1, firstWorker+(r*fc+cc)*sub)
			}
		}
	}
	cut(0, 0, w, h, tree.Levels()-1, 0)
	return p
}

// Stats quantifies a partition's communication cost on a topology for a
// 5-point stencil halo exchange.
type Stats struct {
	// BoundaryCells counts cell-pairs whose owners differ (each such
	// pair exchanges one halo cell per direction per step).
	BoundaryCells int
	// WeightedHops is Σ over boundary pairs of the hop distance between
	// their owners — the traffic×distance product that costs energy.
	WeightedHops int
	// MaxHops is the worst hop distance between neighbouring cells.
	MaxHops int
	// Balance is max/mean cells per worker (1.0 = perfect).
	Balance float64
}

// Evaluate computes halo-communication statistics on the topology.
func (p *Partition) Evaluate(t topo.Topology) Stats {
	if t.NumWorkers() < p.P {
		panic("part: topology smaller than partition")
	}
	var s Stats
	count := func(a, b int) {
		if a == b {
			return
		}
		s.BoundaryCells++
		h := t.HopDistance(a, b)
		s.WeightedHops += h
		if h > s.MaxHops {
			s.MaxHops = h
		}
	}
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			o := p.Owner(x, y)
			if x+1 < p.W {
				count(o, p.Owner(x+1, y))
			}
			if y+1 < p.H {
				count(o, p.Owner(x, y+1))
			}
		}
	}
	cells := make([]int, p.P)
	for _, o := range p.Assign {
		cells[o]++
	}
	max := 0
	for _, c := range cells {
		if c > max {
			max = c
		}
	}
	mean := float64(p.W*p.H) / float64(p.P)
	if mean > 0 {
		s.Balance = float64(max) / mean
	}
	return s
}

// MeanHops returns WeightedHops/BoundaryCells (0 when no boundary).
func (s Stats) MeanHops() float64 {
	if s.BoundaryCells == 0 {
		return 0
	}
	return float64(s.WeightedHops) / float64(s.BoundaryCells)
}
