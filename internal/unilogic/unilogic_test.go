package unilogic

import (
	"strings"
	"testing"

	"ecoscale/internal/accel"
	"ecoscale/internal/energy"
	"ecoscale/internal/fabric"
	"ecoscale/internal/hls"
	"ecoscale/internal/noc"
	"ecoscale/internal/sim"
	"ecoscale/internal/smmu"
	"ecoscale/internal/topo"
	"ecoscale/internal/unimem"
)

const srcScale = `
kernel scale(global float* A, int N) {
    for (i = 0; i < N; i++) {
        A[i] = A[i] * 2.0;
    }
}`

type rig struct {
	eng    *sim.Engine
	space  *unimem.Space
	domain *Domain
}

func newRig(t testing.TB, workers int) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	tr := topo.NewTree(workers)
	meter := energy.NewMeter(eng, energy.DefaultCostModel())
	net := noc.NewNetwork(eng, tr, noc.DefaultConfig(tr.MaxHops()), meter, nil)
	space := unimem.NewSpace(net, unimem.DefaultConfig(), nil)
	var mgrs []*accel.Manager
	for w := 0; w < workers; w++ {
		fab := fabric.New(eng, fabric.DefaultConfig(), meter)
		mgrs = append(mgrs, accel.NewManager(w, fab, space, smmu.New(smmu.DefaultConfig()), meter))
	}
	return &rig{eng: eng, space: space, domain: NewDomain(tr, mgrs, eng)}
}

func deploy(t testing.TB, r *rig, w int) *accel.Instance {
	t.Helper()
	im, err := hls.Synthesize(hls.MustParse(srcScale), hls.DefaultDirectives())
	if err != nil {
		t.Fatal(err)
	}
	var got *accel.Instance
	r.domain.Deploy(w, im, func(in *accel.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = in
	})
	r.eng.RunUntilIdle()
	if got == nil {
		t.Fatal("deploy never completed")
	}
	// Identity-map the stream so SMMU passes.
	m := r.domain.Manager(w)
	m.MMU.BindContext(got.StreamID, 1, 1)
	for p := uint64(0); p < 64; p++ {
		m.MMU.MapStage1(1, p*4096, p*4096, smmu.PermRW)
		m.MMU.MapStage2(1, p*4096, p*4096, smmu.PermRW)
	}
	return got
}

func spec(r *rig, addr uint64) accel.CallSpec {
	return accel.CallSpec{
		Bindings: map[string]float64{"N": 256},
		Reads:    []accel.Span{{Addr: addr, Size: 1024}},
	}
}

func TestSharedRemoteCall(t *testing.T) {
	r := newRig(t, 4)
	deploy(t, r, 0)
	addr := r.space.Alloc(0, 4096)
	var callErr error
	ok := false
	r.domain.Call(3, "scale", spec(r, addr), func(err error) { callErr = err; ok = true })
	r.eng.RunUntilIdle()
	if !ok || callErr != nil {
		t.Fatalf("remote call failed: %v", callErr)
	}
	total, remote := r.domain.Calls()
	if total != 1 || remote != 1 {
		t.Errorf("calls = %d/%d, want 1 total 1 remote", total, remote)
	}
}

func TestPrivatePolicyRejectsRemote(t *testing.T) {
	r := newRig(t, 4)
	r.domain.Policy = Private
	deploy(t, r, 0)
	addr := r.space.Alloc(0, 4096)
	var callErr error
	r.domain.Call(3, "scale", spec(r, addr), func(err error) { callErr = err })
	r.eng.RunUntilIdle()
	if callErr == nil {
		t.Fatal("private policy allowed a remote call")
	}
	if !strings.Contains(callErr.Error(), "private") {
		t.Errorf("error %v should name the policy", callErr)
	}
	if r.domain.Rejected() != 1 {
		t.Error("rejection not counted")
	}
	// Local call still fine.
	r.domain.Call(0, "scale", spec(r, addr), func(err error) { callErr = err })
	r.eng.RunUntilIdle()
	if callErr != nil {
		t.Errorf("local call under private policy failed: %v", callErr)
	}
}

func TestUnknownKernel(t *testing.T) {
	r := newRig(t, 2)
	var err error
	r.domain.Call(0, "nope", accel.CallSpec{}, func(e error) { err = e })
	if err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestLeastLoadedRouting(t *testing.T) {
	r := newRig(t, 4)
	deploy(t, r, 0)
	deploy(t, r, 1)
	addr := r.space.Alloc(0, 4096)
	// Fire many concurrent calls from worker 3 (equidistant on a flat
	// 1-level tree): they must spread across both instances.
	for i := 0; i < 10; i++ {
		r.domain.Call(3, "scale", spec(r, addr), nil)
	}
	r.eng.RunUntilIdle()
	util := r.domain.Utilization()
	if util["scale@0"] == 0 || util["scale@1"] == 0 {
		t.Errorf("load not spread: %v", util)
	}
	if b := r.domain.Balance("scale"); b > 1.5 {
		t.Errorf("balance %v too skewed", b)
	}
}

func TestNearestPreferredWhenIdle(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := topo.NewTree(2, 2) // workers 0,1 in CN0; 2,3 in CN1
	meter := energy.NewMeter(eng, energy.DefaultCostModel())
	net := noc.NewNetwork(eng, tr, noc.DefaultConfig(tr.MaxHops()), meter, nil)
	space := unimem.NewSpace(net, unimem.DefaultConfig(), nil)
	var mgrs []*accel.Manager
	for w := 0; w < 4; w++ {
		mgrs = append(mgrs, accel.NewManager(w, fabric.New(eng, fabric.DefaultConfig(), meter), space, smmu.New(smmu.DefaultConfig()), meter))
	}
	d := NewDomain(tr, mgrs, eng)
	r := &rig{eng: eng, space: space, domain: d}
	inNear := deploy(t, r, 1) // same CN as caller 0
	deploy(t, r, 3)           // remote CN
	addr := space.Alloc(0, 4096)
	d.Call(0, "scale", spec(r, addr), nil)
	eng.RunUntilIdle()
	if inNear.Calls() != 1 {
		t.Error("idle nearest instance was not preferred")
	}
}

func TestSharedBeatsPrivateUnderSkew(t *testing.T) {
	// E6 shape: skewed demand (all calls from one worker) finishes sooner
	// when the worker can use everyone's fabric.
	run := func(policy Policy) sim.Time {
		r := newRig(t, 4)
		r.domain.Policy = policy
		for w := 0; w < 4; w++ {
			deploy(t, r, w)
		}
		addr := r.space.Alloc(0, 4096)
		for i := 0; i < 32; i++ {
			r.domain.Call(0, "scale", accel.CallSpec{
				Bindings: map[string]float64{"N": 4096},
				Reads:    []accel.Span{{Addr: addr, Size: 1024}},
			}, nil)
		}
		r.eng.RunUntilIdle()
		return r.eng.Now()
	}
	shared, private := run(Shared), run(Private)
	if shared >= private {
		t.Errorf("shared pool (%v) should beat private (%v) under skewed demand", shared, private)
	}
}

func TestDeployDuplicateRegistersOnce(t *testing.T) {
	r := newRig(t, 2)
	deploy(t, r, 0)
	deploy(t, r, 0)
	if n := len(r.domain.Instances("scale")); n != 1 {
		t.Errorf("duplicate deploy registered %d instances", n)
	}
}

func TestKernelsSorted(t *testing.T) {
	r := newRig(t, 2)
	deploy(t, r, 0)
	im, _ := hls.Synthesize(hls.MustParse(strings.Replace(srcScale, "scale", "alpha", 1)), hls.DefaultDirectives())
	r.domain.Deploy(1, im, func(*accel.Instance, error) {})
	r.eng.RunUntilIdle()
	ks := r.domain.Kernels()
	if len(ks) != 2 || ks[0] != "alpha" || ks[1] != "scale" {
		t.Errorf("Kernels = %v", ks)
	}
}

func TestManagerMismatchPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := topo.NewTree(4)
	defer func() {
		if recover() == nil {
			t.Error("manager count mismatch did not panic")
		}
	}()
	NewDomain(tr, nil, eng)
}

func TestPolicyString(t *testing.T) {
	if Shared.String() != "shared" || Private.String() != "private" {
		t.Error("policy strings wrong")
	}
}

func TestSharedCNScopesToComputeNode(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := topo.NewTree(2, 2) // workers 0,1 | 2,3
	meter := energy.NewMeter(eng, energy.DefaultCostModel())
	net := noc.NewNetwork(eng, tr, noc.DefaultConfig(tr.MaxHops()), meter, nil)
	space := unimem.NewSpace(net, unimem.DefaultConfig(), nil)
	var mgrs []*accel.Manager
	for w := 0; w < 4; w++ {
		mgrs = append(mgrs, accel.NewManager(w, fabric.New(eng, fabric.DefaultConfig(), meter), space,
			smmu.New(smmu.DefaultConfig()), meter))
	}
	d := NewDomain(tr, mgrs, eng)
	d.Policy = SharedCN
	r := &rig{eng: eng, space: space, domain: d}
	deploy(t, r, 0) // instance in CN0
	addr := space.Alloc(0, 4096)
	// Same-CN caller succeeds.
	var err1, err2 error
	d.Call(1, "scale", spec(r, addr), func(e error) { err1 = e })
	eng.RunUntilIdle()
	if err1 != nil {
		t.Errorf("intra-CN call failed: %v", err1)
	}
	// Cross-CN caller is refused: that path belongs to MPI.
	d.Call(2, "scale", spec(r, addr), func(e error) { err2 = e })
	eng.RunUntilIdle()
	if err2 == nil {
		t.Error("cross-CN call succeeded under SharedCN")
	}
	if SharedCN.String() != "shared-cn" {
		t.Error("policy string wrong")
	}
}
