// Package unilogic implements the UNILOGIC architecture — the paper's
// headline contribution, "introduced in this project for the first time
// as an extension of the UNIMEM architecture": shared partitioned
// reconfigurable resources inside the UNIMEM global address space.
// "Within a Compute Node, any Worker can access any Reconfigurable block
// (even remote blocks that belong to other Workers) through the
// multi-layer interconnect" (§4.1).
//
// A Domain tracks every accelerator instance deployed on the Workers of
// a PGAS partition and routes function calls to them under a sharing
// policy. The Shared policy is UNILOGIC; the Private policy is the
// conventional "FPGA as a local accelerator for a single processing
// node" baseline the related-work section criticizes, kept for the E6
// comparison.
package unilogic

import (
	"fmt"
	"sort"

	"ecoscale/internal/accel"
	"ecoscale/internal/hls"
	"ecoscale/internal/sim"
	"ecoscale/internal/topo"
	"ecoscale/internal/trace"
)

// Policy selects how Workers may use reconfigurable blocks.
type Policy int

// Sharing policies.
const (
	// Shared lets any Worker call any instance in the domain (UNILOGIC
	// across the whole machine).
	Shared Policy = iota
	// SharedCN is the paper-faithful UNILOGIC scope: any Worker may call
	// any instance *within its Compute Node* (the PGAS domain of §4.1);
	// instances in other Compute Nodes are invisible (MPI territory).
	SharedCN
	// Private restricts each Worker to its own fabric.
	Private
)

func (p Policy) String() string {
	switch p {
	case Private:
		return "private"
	case SharedCN:
		return "shared-cn"
	default:
		return "shared"
	}
}

// Domain is the accelerator registry of one PGAS partition.
type Domain struct {
	Policy Policy
	// Flow, when non-nil, records the Fig. 5 layer-interaction trace.
	Flow *trace.FlowLog
	// Trace, when non-nil, records routing-decision events.
	Trace *trace.Tracer
	// Reg, when non-nil, receives call counters labelled by kernel.
	Reg *trace.Registry

	topo      topo.Topology
	prov      ManagerProvider
	instances map[string][]*accel.Instance // kernel name → deployed instances
	pending   map[string]int               // queued calls per instance key
	eng       *sim.Engine

	calls       uint64
	remoteCalls uint64
	rejected    uint64
}

// ManagerProvider abstracts access to per-Worker accelerator managers so
// a flyweight machine can materialize a Worker's manager on first touch.
// An unmaterialized Worker behaves exactly like a freshly built idle one:
// an empty fabric (FreeRegions == TotalRegions) and no instances.
type ManagerProvider interface {
	// NumWorkers returns the Worker count of the domain.
	NumWorkers() int
	// Manager returns worker w's manager, materializing it if needed.
	Manager(w int) *accel.Manager
	// PeekManager returns worker w's manager, or nil when the worker has
	// not been materialized. It must not materialize anything.
	PeekManager(w int) *accel.Manager
	// FreeRegions reports worker w's free fabric regions without
	// materializing an idle worker.
	FreeRegions(w int) int
}

// staticManagers adapts an eager per-Worker manager slice to
// ManagerProvider.
type staticManagers []*accel.Manager

func (p staticManagers) NumWorkers() int                  { return len(p) }
func (p staticManagers) Manager(w int) *accel.Manager     { return p[w] }
func (p staticManagers) PeekManager(w int) *accel.Manager { return p[w] }
func (p staticManagers) FreeRegions(w int) int            { return p[w].Fab.FreeRegions() }

// NewDomain creates a domain over per-Worker managers; mgrs[i] must be
// Worker i's manager.
func NewDomain(t topo.Topology, mgrs []*accel.Manager, eng *sim.Engine) *Domain {
	if len(mgrs) != t.NumWorkers() {
		panic(fmt.Sprintf("unilogic: %d managers for %d workers", len(mgrs), t.NumWorkers()))
	}
	return NewDomainFrom(t, staticManagers(mgrs), eng)
}

// NewDomainFrom creates a domain over a manager provider, which may
// materialize managers lazily.
func NewDomainFrom(t topo.Topology, prov ManagerProvider, eng *sim.Engine) *Domain {
	if prov.NumWorkers() != t.NumWorkers() {
		panic(fmt.Sprintf("unilogic: %d managers for %d workers", prov.NumWorkers(), t.NumWorkers()))
	}
	return &Domain{
		topo: t, prov: prov, eng: eng,
		instances: map[string][]*accel.Instance{},
		pending:   map[string]int{},
	}
}

// Manager returns worker w's accelerator manager, materializing it in a
// flyweight machine.
func (d *Domain) Manager(w int) *accel.Manager { return d.prov.Manager(w) }

// FreeRegions reports worker w's free fabric regions without forcing an
// idle worker into existence.
func (d *Domain) FreeRegions(w int) int { return d.prov.FreeRegions(w) }

// NumWorkers returns the domain's Worker count.
func (d *Domain) NumWorkers() int { return d.prov.NumWorkers() }

// Deploy loads impl on worker w's fabric and registers it under the
// kernel's name.
func (d *Domain) Deploy(w int, impl *hls.Impl, done func(*accel.Instance, error)) {
	d.prov.Manager(w).Ensure(impl, func(in *accel.Instance, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		d.register(in)
		done(in, nil)
	})
}

func (d *Domain) register(in *accel.Instance) {
	name := in.Impl.Kernel.Name
	for _, have := range d.instances[name] {
		if have == in {
			return
		}
	}
	d.instances[name] = append(d.instances[name], in)
}

// Instances returns the registered instances of a kernel.
func (d *Domain) Instances(kernel string) []*accel.Instance {
	return d.instances[kernel]
}

// Deregister drops an instance from the routing table (eviction or
// region failure); future Calls no longer consider it. The pending
// counter for its key is left alone: in-flight calls still decrement it
// on completion, and a redeploy to the same Worker rightly inherits the
// backlog. Reports whether the instance was registered.
func (d *Domain) Deregister(in *accel.Instance) bool {
	name := in.Impl.Kernel.Name
	ins := d.instances[name]
	for i, have := range ins {
		if have == in {
			d.instances[name] = append(ins[:i], ins[i+1:]...)
			if len(d.instances[name]) == 0 {
				delete(d.instances, name)
			}
			return true
		}
	}
	return false
}

// DeregisterWorker drops every instance hosted on worker w (the Worker
// died) and returns how many were removed, walking kernels in sorted
// order for determinism.
func (d *Domain) DeregisterWorker(w int) int {
	n := 0
	for _, name := range d.Kernels() {
		ins := d.instances[name]
		kept := ins[:0]
		for _, in := range ins {
			if in.Worker == w {
				n++
			} else {
				kept = append(kept, in)
			}
		}
		if len(kept) == 0 {
			delete(d.instances, name)
		} else {
			d.instances[name] = kept
		}
	}
	return n
}

// Calls returns total and remote (caller != hosting Worker) call counts.
func (d *Domain) Calls() (total, remote uint64) { return d.calls, d.remoteCalls }

// Rejected returns how many calls found no eligible instance.
func (d *Domain) Rejected() uint64 { return d.rejected }

func key(in *accel.Instance) string {
	return fmt.Sprintf("%s@%d", in.Impl.Kernel.Name, in.Worker)
}

// sameComputeNode reports whether two workers share a PGAS domain; on a
// non-tree topology every worker is one domain.
func (d *Domain) sameComputeNode(a, b int) bool {
	tree, ok := d.topo.(*topo.Tree)
	if !ok {
		return true
	}
	return tree.ComputeNodeOf(a) == tree.ComputeNodeOf(b)
}

// pick selects the best eligible instance for caller: least pending
// calls first, then nearest by hop distance, then lowest Worker id for
// determinism. Remote state is the domain's own bookkeeping — no status
// polling of remote Workers is needed, matching the paper's aversion to
// remote-monitoring overhead.
func (d *Domain) pick(caller int, kernel string) *accel.Instance {
	var best *accel.Instance
	bestLoad, bestDist := 0, 0
	for _, in := range d.instances[kernel] {
		if d.Policy == Private && in.Worker != caller {
			continue
		}
		if d.Policy == SharedCN && !d.sameComputeNode(caller, in.Worker) {
			continue
		}
		load := d.pending[key(in)]
		dist := d.topo.HopDistance(caller, in.Worker)
		if best == nil || load < bestLoad ||
			(load == bestLoad && dist < bestDist) ||
			(load == bestLoad && dist == bestDist && in.Worker < best.Worker) {
			best, bestLoad, bestDist = in, load, dist
		}
	}
	return best
}

// Call routes one invocation of kernel from caller to an instance
// according to the policy. The error (no instance available) is
// delivered synchronously through done.
func (d *Domain) Call(caller int, kernel string, spec accel.CallSpec, done func(error)) {
	in := d.pick(caller, kernel)
	if in == nil {
		d.rejected++
		if d.Reg != nil {
			d.Reg.CounterL("unilogic.rejected", trace.L("kernel", kernel)).Inc()
		}
		if done != nil {
			done(fmt.Errorf("unilogic: no %s instance available to worker %d under %s policy",
				kernel, caller, d.Policy))
		}
		return
	}
	d.calls++
	if in.Worker != caller {
		d.remoteCalls++
	}
	d.Flow.Add(int64(d.eng.Now()), "unilogic", "route %s: caller w%d -> instance %s (%d pending, policy %s)",
		kernel, caller, key(in), d.pending[key(in)], d.Policy)
	d.Trace.Add(trace.Span{Name: kernel, Cat: trace.CatRoute,
		Start: int64(d.eng.Now()), End: int64(d.eng.Now()),
		PID: trace.WorkerPID(caller), TID: trace.TIDCPU, Arg: int64(in.Worker)})
	if d.Reg != nil {
		d.Reg.CounterL("unilogic.calls", trace.L("kernel", kernel)).Inc()
		if in.Worker != caller {
			d.Reg.CounterL("unilogic.remote_calls", trace.L("kernel", kernel)).Inc()
		}
	}
	k := key(in)
	d.pending[k]++
	in.Invoke(caller, spec, func(err error) {
		d.pending[k]--
		if done != nil {
			done(err)
		}
	})
}

// Utilization returns, per registered instance (sorted by key), the
// completed call count — the load-spreading evidence of E6.
func (d *Domain) Utilization() map[string]uint64 {
	out := map[string]uint64{}
	for _, ins := range d.instances {
		for _, in := range ins {
			out[key(in)] = in.Calls()
		}
	}
	return out
}

// Balance returns max/mean completed calls across instances of a kernel
// (1.0 = perfectly balanced); 0 when unused.
func (d *Domain) Balance(kernel string) float64 {
	ins := d.instances[kernel]
	if len(ins) == 0 {
		return 0
	}
	var sum, max uint64
	for _, in := range ins {
		c := in.Calls()
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(ins))
	return float64(max) / mean
}

// Kernels returns the registered kernel names, sorted.
func (d *Domain) Kernels() []string {
	names := make([]string, 0, len(d.instances))
	for n := range d.instances {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
