package ecoscale_test

// Flyweight weak-scaling smoke (`make scale-smoke`): a 131k-Worker
// machine must construct in O(1) per Worker, fit a hard heap budget,
// and still execute a sparse task burst that touches a handful of
// Workers — materializing only those — with everything else staying a
// quiescent summary record.

import (
	"runtime"
	"testing"

	"ecoscale"
	"ecoscale/internal/hls"
	"ecoscale/internal/rts"
)

func TestScaleSmoke100k(t *testing.T) {
	const (
		wpc, nodes = 256, 512 // 131072 workers
		workers    = wpc * nodes
		tasks      = 128
		// Budget for the whole constructed machine. An eager build at
		// this scale needs gigabytes (fabric grids, TLBs, page tables,
		// schedulers × 131k); the flyweight spine is a few MB of index
		// slots plus the census.
		heapBudget = 64 << 20
	)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	m := ecoscale.New(ecoscale.DefaultConfig(wpc, nodes))
	runtime.GC()
	runtime.ReadMemStats(&m1)
	used := m1.HeapAlloc - m0.HeapAlloc
	if used > heapBudget {
		t.Fatalf("untouched %d-worker machine uses %d MiB of heap, budget %d MiB",
			workers, used>>20, heapBudget>>20)
	}
	if m.LiveWorkers() != 0 {
		t.Fatalf("construction materialized %d workers", m.LiveWorkers())
	}

	m.SetPolicy(ecoscale.PolicyCPU)
	done := 0
	stride := workers / tasks
	for i := 0; i < tasks; i++ {
		m.Sched(i*stride).Submit(&rts.Task{
			Kernel:   "smoke",
			Bindings: map[string]float64{},
			SWStats:  hls.RunStats{Ops: 4096, Loads: 1024, Stores: 1024},
		}, func(rts.Device, error) { done++ })
	}
	m.Run()
	if done != tasks {
		t.Fatalf("completed %d of %d tasks", done, tasks)
	}
	live := m.LiveWorkers()
	if live < tasks {
		t.Errorf("only %d workers live after %d spread tasks", live, tasks)
	}
	// Work stealing probes neighbours without materializing them, so
	// liveness stays within a small multiple of the touched set.
	if live > tasks*4 {
		t.Errorf("%d workers live for %d tasks; laziness leak?", live, tasks)
	}
	quiescent := 0
	for cn := 0; cn < m.Tree.NumComputeNodes(); cn++ {
		if m.Census().Quiescent(1, cn) {
			quiescent++
		}
	}
	if quiescent < nodes/2 {
		t.Errorf("only %d of %d compute nodes stayed quiescent", quiescent, nodes)
	}
	runtime.KeepAlive(m)
}
